"""A structural model of X.509 certificates.

Only the parts the paper's analyses depend on are modeled, but those
are modeled faithfully:

* the **ordering** of Subject Alternative Name entries and of X.509
  extensions is significant — two of the real CA bugs reproduced in
  Section 3.4 (GlobalSign, D-Trust) were ordering changes between
  precertificate and final certificate that invalidated embedded SCTs;
* a canonical TBS ("to-be-signed") byte serialization, because SCT
  signatures are computed over (a cleaned form of) these bytes;
* the RFC 6962 poison extension marking precertificates and the SCT
  list extension carrying embedded SCTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.util.timeutil import timestamp_ms

#: OID of the RFC 6962 precertificate poison extension.
POISON_EXTENSION_OID = "1.3.6.1.4.1.11129.2.4.3"
#: OID of the embedded SCT list extension.
SCT_LIST_EXTENSION_OID = "1.3.6.1.4.1.11129.2.4.2"


class SanType(str, Enum):
    """Subject Alternative Name entry types used by the paper."""

    DNS = "dns"
    IP = "ip"


@dataclass(frozen=True)
class GeneralName:
    """A single SAN entry."""

    san_type: SanType
    value: str

    def encode(self) -> bytes:
        payload = f"{self.san_type.value}:{self.value}".encode("utf-8")
        return len(payload).to_bytes(2, "big") + payload


@dataclass(frozen=True)
class Extension:
    """An X.509 extension; ``value`` is opaque bytes."""

    oid: str
    value: bytes = b""
    critical: bool = False

    def encode(self) -> bytes:
        oid_bytes = self.oid.encode("ascii")
        return (
            len(oid_bytes).to_bytes(1, "big")
            + oid_bytes
            + (b"\x01" if self.critical else b"\x00")
            + len(self.value).to_bytes(3, "big")
            + self.value
        )


@dataclass(frozen=True)
class Certificate:
    """An immutable certificate (or precertificate).

    Attributes
    ----------
    serial:
        Serial number, unique per issuer in well-behaved CAs.
    issuer_cn / issuer_org:
        Distinguished-name fields of the issuer.  ``issuer_org`` is the
        CA brand the paper aggregates by ("Let's Encrypt", "DigiCert"...).
    subject_cn:
        The Common Name; usually also present in ``san``.
    san:
        Ordered SAN entries.  Order matters for SCT validity.
    extensions:
        Ordered extension list.  Order matters for SCT validity.
    """

    serial: int
    issuer_cn: str
    issuer_org: str
    subject_cn: str
    san: Tuple[GeneralName, ...]
    not_before: datetime
    not_after: datetime
    public_key_id: bytes = b""
    extensions: Tuple[Extension, ...] = field(default_factory=tuple)
    signature: bytes = b""

    # -- content helpers ---------------------------------------------------

    def dns_names(self) -> List[str]:
        """All DNS names in the certificate (CN first, then DNS SANs), deduplicated."""
        names: List[str] = []
        seen = set()
        for candidate in [self.subject_cn] + [
            entry.value for entry in self.san if entry.san_type is SanType.DNS
        ]:
            lowered = candidate.lower()
            if lowered and lowered not in seen:
                seen.add(lowered)
                names.append(lowered)
        return names

    def ip_addresses(self) -> List[str]:
        """IP-address SAN entries in order."""
        return [e.value for e in self.san if e.san_type is SanType.IP]

    def has_extension(self, oid: str) -> bool:
        return any(ext.oid == oid for ext in self.extensions)

    def get_extension(self, oid: str) -> Optional[Extension]:
        for ext in self.extensions:
            if ext.oid == oid:
                return ext
        return None

    @property
    def is_precertificate(self) -> bool:
        """True when the RFC 6962 poison extension is present."""
        return self.has_extension(POISON_EXTENSION_OID)

    @property
    def has_embedded_scts(self) -> bool:
        """True when the SCT list extension is present."""
        return self.has_extension(SCT_LIST_EXTENSION_OID)

    # -- serialization -----------------------------------------------------

    def tbs_bytes(self, *, exclude_oids: Sequence[str] = ()) -> bytes:
        """Canonical TBS serialization.

        ``exclude_oids`` supports the RFC 6962 reconstruction rules: SCT
        signatures cover the TBS without the poison extension; embedded
        SCT verification removes the SCT list extension from the final
        certificate before comparing.
        """
        excluded = set(exclude_oids)
        parts = [
            b"TBS1",
            self.serial.to_bytes(16, "big"),
            _encode_str(self.issuer_cn),
            _encode_str(self.issuer_org),
            _encode_str(self.subject_cn),
            timestamp_ms(self.not_before).to_bytes(8, "big"),
            timestamp_ms(self.not_after).to_bytes(8, "big"),
            len(self.public_key_id).to_bytes(1, "big"),
            self.public_key_id,
        ]
        san_blob = b"".join(entry.encode() for entry in self.san)
        parts.append(len(san_blob).to_bytes(4, "big"))
        parts.append(san_blob)
        ext_blob = b"".join(
            ext.encode() for ext in self.extensions if ext.oid not in excluded
        )
        parts.append(len(ext_blob).to_bytes(4, "big"))
        parts.append(ext_blob)
        return b"".join(parts)

    def with_extensions(self, extensions: Sequence[Extension]) -> "Certificate":
        """Copy with a replaced (ordered) extension list."""
        return replace(self, extensions=tuple(extensions))

    def with_san(self, san: Sequence[GeneralName]) -> "Certificate":
        """Copy with a replaced (ordered) SAN list."""
        return replace(self, san=tuple(san))

    def without_extension(self, oid: str) -> "Certificate":
        """Copy with one extension removed (order otherwise preserved)."""
        return self.with_extensions(
            [ext for ext in self.extensions if ext.oid != oid]
        )

    def fingerprint(self) -> bytes:
        """A certificate identity: hash over TBS plus signature."""
        from repro.x509.crypto import sha256

        return sha256(self.tbs_bytes() + self.signature)

    def __hash__(self) -> int:
        return hash((self.serial, self.issuer_cn, self.subject_cn, self.san))


def _encode_str(text: str) -> bytes:
    payload = text.encode("utf-8")
    return len(payload).to_bytes(2, "big") + payload


def dns_general_names(names: Sequence[str]) -> Tuple[GeneralName, ...]:
    """Convenience: build a SAN tuple of DNS entries."""
    return tuple(GeneralName(SanType.DNS, name) for name in names)
