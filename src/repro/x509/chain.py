"""CA hierarchies and certificate-chain validation.

The paper aggregates issuance by CA *brand* while noting that each
brand subsumes "various Issuer-CNs" — in reality those are
intermediate CAs under a root.  This module models that structure:

* :class:`CaHierarchy` builds a root with signed intermediates, each a
  fully functional :class:`~repro.x509.ca.CertificateAuthority`;
* :func:`build_chain` assembles leaf -> intermediate -> root chains
  (what ``add-chain``/``add-pre-chain`` carry in real CT submissions);
* :func:`validate_chain` walks the chain verifying signatures, name
  chaining, validity windows, and that the anchor is trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta, timezone
from typing import Dict, List, Optional, Sequence, Tuple

from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority
from repro.x509.certificate import Certificate, Extension, dns_general_names


@dataclass(frozen=True)
class ChainValidationResult:
    valid: bool
    reasons: Tuple[str, ...] = ()


@dataclass
class CaHierarchy:
    """A root CA with signed intermediates, all under one brand."""

    brand: str
    root_key: crypto.KeyPair = None  # type: ignore[assignment]
    root_certificate: Certificate = None  # type: ignore[assignment]
    intermediates: Dict[str, CertificateAuthority] = field(default_factory=dict)
    intermediate_certs: Dict[str, Certificate] = field(default_factory=dict)
    key_bits: int = 256
    _serial: int = 0

    def __post_init__(self) -> None:
        if self.root_key is None:
            self.root_key = crypto.KeyPair.generate(
                f"root:{self.brand}", self.key_bits
            )
        if self.root_certificate is None:
            self.root_certificate = self._self_signed_root()

    def _self_signed_root(self) -> Certificate:
        name = f"{self.brand} Root CA"
        cert = Certificate(
            serial=1,
            issuer_cn=name,
            issuer_org=self.brand,
            subject_cn=name,
            san=dns_general_names([]),
            not_before=datetime(2010, 1, 1, tzinfo=timezone.utc),
            not_after=datetime(2035, 1, 1, tzinfo=timezone.utc),
            public_key_id=self.root_key.key_id[:8],
            extensions=(Extension("2.5.29.19", b"CA:TRUE", critical=True),),
        )
        return replace(cert, signature=crypto.sign(self.root_key, cert.tbs_bytes()))

    def add_intermediate(self, cn: str, *, not_before: datetime,
                         lifetime_days: int = 1825) -> CertificateAuthority:
        """Create an intermediate CA whose cert the root signs."""
        if cn in self.intermediates:
            raise ValueError(f"intermediate {cn!r} already exists")
        intermediate = CertificateAuthority(
            self.brand, issuer_cns=(cn,), key_bits=self.key_bits,
            key=crypto.KeyPair.generate(f"intermediate:{self.brand}:{cn}", self.key_bits),
        )
        self._serial += 1
        cert = Certificate(
            serial=1_000 + self._serial,
            issuer_cn=self.root_certificate.subject_cn,
            issuer_org=self.brand,
            subject_cn=cn,
            san=dns_general_names([]),
            not_before=not_before,
            not_after=not_before + timedelta(days=lifetime_days),
            public_key_id=intermediate.key.key_id[:8],
            extensions=(Extension("2.5.29.19", b"CA:TRUE", critical=True),),
        )
        cert = replace(cert, signature=crypto.sign(self.root_key, cert.tbs_bytes()))
        self.intermediates[cn] = intermediate
        self.intermediate_certs[cn] = cert
        return intermediate

    def intermediate_for(self, cn: str) -> CertificateAuthority:
        return self.intermediates[cn]

    def chain_for(self, leaf: Certificate) -> List[Certificate]:
        """leaf -> issuing intermediate -> root."""
        intermediate_cert = self.intermediate_certs.get(leaf.issuer_cn)
        if intermediate_cert is None:
            raise ValueError(
                f"no intermediate with CN {leaf.issuer_cn!r} in {self.brand}"
            )
        return [leaf, intermediate_cert, self.root_certificate]

    def keys_by_subject(self) -> Dict[str, crypto.KeyPair]:
        out = {self.root_certificate.subject_cn: self.root_key}
        for cn, ca in self.intermediates.items():
            out[cn] = ca.key
        return out


def build_chain(
    leaf: Certificate, hierarchy: CaHierarchy
) -> List[Certificate]:
    """Convenience alias for :meth:`CaHierarchy.chain_for`."""
    return hierarchy.chain_for(leaf)


def validate_chain(
    chain: Sequence[Certificate],
    trusted_roots: Dict[str, crypto.KeyPair],
    now: datetime,
    *,
    known_keys: Optional[Dict[str, crypto.KeyPair]] = None,
) -> ChainValidationResult:
    """Validate a leaf-first chain up to a trusted root.

    Checks per link: issuer/subject name chaining, validity windows,
    CA:TRUE on non-leaf certificates, the issuer's signature over each
    child, the binding between each CA certificate and the key used to
    verify its children (via the embedded key id), and that the final
    certificate's subject is a trusted anchor.

    ``known_keys`` supplies intermediate public keys by subject CN (in
    real X.509 those travel inside the certificates; our structural
    model carries only key ids, so the verifier gets the key material
    out of band and the key-id binding check keeps it honest).
    """
    reasons: List[str] = []
    if not chain:
        return ChainValidationResult(False, ("empty chain",))
    for index, cert in enumerate(chain):
        if not cert.not_before <= now <= cert.not_after:
            reasons.append(f"certificate {cert.subject_cn!r} outside validity window")
        if index > 0 and cert.get_extension("2.5.29.19") is None:
            reasons.append(f"{cert.subject_cn!r} used as CA without CA:TRUE")
        if index + 1 < len(chain):
            parent = chain[index + 1]
            if cert.issuer_cn != parent.subject_cn:
                reasons.append(
                    f"{cert.subject_cn!r} names issuer {cert.issuer_cn!r} "
                    f"but is followed by {parent.subject_cn!r}"
                )
    anchor = chain[-1]
    if anchor.subject_cn not in trusted_roots:
        reasons.append(f"anchor {anchor.subject_cn!r} is not a trusted root")
        return ChainValidationResult(False, tuple(reasons))
    keys: Dict[str, crypto.KeyPair] = dict(known_keys or {})
    keys.update(trusted_roots)
    for index in range(len(chain) - 1, -1, -1):
        cert = chain[index]
        signer = keys.get(cert.issuer_cn)
        if signer is None:
            reasons.append(f"no key known for issuer {cert.issuer_cn!r}")
            break
        if index + 1 < len(chain):
            # The signer key must be the one the parent cert certifies.
            parent = chain[index + 1]
            if parent.public_key_id != signer.key_id[: len(parent.public_key_id)]:
                reasons.append(
                    f"key for {cert.issuer_cn!r} does not match the "
                    f"certificate issued to it"
                )
                break
        if not crypto.verify(signer, cert.tbs_bytes(), cert.signature):
            reasons.append(f"bad signature on {cert.subject_cn!r}")
            break
    return ChainValidationResult(valid=not reasons, reasons=tuple(reasons))
