"""Lightweight but genuine cryptography for the simulation.

CT log signatures must be *verifiable* for the reproduction to exercise
the paper's Section 3.4 pipeline (detecting invalid embedded SCTs by
reconstructing the precertificate and checking the log's signature).
We therefore implement a real textbook-RSA signature scheme over
SHA-256 digests with deterministic key generation:

* keys are generated from a seed string, so the whole simulated PKI is
  reproducible;
* primes come from a Miller-Rabin search seeded by SHA-256 counters;
* signing is ``digest^d mod n`` over a full-domain-hash style padding,
  verification recomputes ``sig^e mod n``.

512-bit moduli keep operations fast; this is a simulation, not a
production credential system, and the scheme is used only for
integrity of the simulated artifacts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

DEFAULT_KEY_BITS = 512
_E = 65537

_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def _is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Deterministic-witness Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Deterministic witness schedule derived from n keeps keygen reproducible.
    for i in range(rounds):
        seed = hashlib.sha256(f"mr:{n}:{i}".encode()).digest()
        a = 2 + int.from_bytes(seed, "big") % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _derive_prime(seed: str, bits: int) -> int:
    """Find the first probable prime in a hash-derived counter sequence."""
    counter = 0
    while True:
        material = b""
        block = 0
        while len(material) * 8 < bits:
            material += hashlib.sha256(
                f"prime:{seed}:{counter}:{block}".encode()
            ).digest()
            block += 1
        candidate = int.from_bytes(material, "big")
        candidate |= 1 << (bits - 1)  # ensure full bit length
        candidate |= 1  # ensure odd
        candidate &= (1 << bits) - 1
        if candidate % _E == 1:
            counter += 1
            continue
        if _is_probable_prime(candidate):
            return candidate
        counter += 1


@dataclass(frozen=True)
class KeyPair:
    """An RSA keypair with deterministic provenance.

    Attributes
    ----------
    n, e:
        Public modulus and exponent.
    d:
        Private exponent (kept here because the whole PKI is simulated).
    key_id:
        SHA-256 of the serialized public key; CT uses exactly this as
        the LogID in SCTs (RFC 6962 section 3.2).
    """

    n: int
    e: int
    d: int
    key_id: bytes

    @classmethod
    def generate(cls, seed: str, bits: int = DEFAULT_KEY_BITS) -> "KeyPair":
        """Deterministically generate a keypair from ``seed``."""
        half = bits // 2
        p = _derive_prime(f"{seed}:p", half)
        q = _derive_prime(f"{seed}:q", half)
        while q == p:  # pragma: no cover - astronomically unlikely
            q = _derive_prime(f"{seed}:q2", half)
        n = p * q
        phi = (p - 1) * (q - 1)
        d = pow(_E, -1, phi)
        key_id = sha256(cls._serialize_public(n, _E))
        return cls(n=n, e=_E, d=d, key_id=key_id)

    @staticmethod
    def _serialize_public(n: int, e: int) -> bytes:
        n_bytes = n.to_bytes((n.bit_length() + 7) // 8, "big")
        e_bytes = e.to_bytes((e.bit_length() + 7) // 8, "big")
        return (
            len(n_bytes).to_bytes(2, "big")
            + n_bytes
            + len(e_bytes).to_bytes(2, "big")
            + e_bytes
        )

    def public_bytes(self) -> bytes:
        """Serialized public key (input to the key id)."""
        return self._serialize_public(self.n, self.e)


def _encode_digest(message: bytes, n: int) -> int:
    """Full-domain-hash style encoding of a message below the modulus."""
    target_len = (n.bit_length() + 7) // 8 - 1
    material = b""
    block = 0
    while len(material) < target_len:
        material += hashlib.sha256(bytes([block]) + message).digest()
        block += 1
    return int.from_bytes(material[:target_len], "big")


def sign(key: KeyPair, message: bytes) -> bytes:
    """Sign ``message`` with the private exponent; returns fixed-width bytes."""
    encoded = _encode_digest(message, key.n)
    signature = pow(encoded, key.d, key.n)
    width = (key.n.bit_length() + 7) // 8
    return signature.to_bytes(width, "big")


def verify(key: KeyPair, message: bytes, signature: bytes) -> bool:
    """Verify a signature produced by :func:`sign` using only public parts."""
    width = (key.n.bit_length() + 7) // 8
    if len(signature) != width:
        return False
    sig_int = int.from_bytes(signature, "big")
    if sig_int >= key.n:
        return False
    recovered = pow(sig_int, key.e, key.n)
    return recovered == _encode_digest(message, key.n)
