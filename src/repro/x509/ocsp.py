"""A minimal OCSP substrate for stapled responses carrying SCTs.

The paper's third SCT transmission channel is "a stapled Online
Certificate Status Protocol (OCSP) response" (Section 2; ~2M
connections in Section 3.2).  This module models just enough of
RFC 6960 for that: a responder owned by the CA signs per-certificate
status responses which may embed an SCT list, and clients verify the
responder signature and freshness.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from enum import Enum
from typing import Dict, Tuple

from repro.ct.sct import SignedCertificateTimestamp, encode_sct_list
from repro.x509 import crypto
from repro.x509.certificate import Certificate


class CertStatus(str, Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class OcspResponse:
    """A signed status assertion for one certificate."""

    issuer_org: str
    serial: int
    status: CertStatus
    produced_at: datetime
    next_update: datetime
    sct_blob: bytes = b""
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        return b"".join(
            [
                b"OCSP1",
                self.issuer_org.encode(),
                self.serial.to_bytes(16, "big"),
                self.status.value.encode(),
                int(self.produced_at.timestamp()).to_bytes(8, "big"),
                int(self.next_update.timestamp()).to_bytes(8, "big"),
                self.sct_blob,
            ]
        )

    def verify(self, responder_key: crypto.KeyPair, now: datetime) -> bool:
        """Signature plus freshness check."""
        if now > self.next_update:
            return False
        return crypto.verify(responder_key, self.signed_payload(), self.signature)

    def scts(self) -> "list[SignedCertificateTimestamp]":
        return SignedCertificateTimestamp.decode_list(self.sct_blob)


class OcspResponder:
    """The CA's OCSP responder.

    Tracks revocations (NetLock revoked its misissued certificate in
    Section 3.4) and staples SCT lists into responses on request.
    """

    def __init__(self, ca_name: str, key: crypto.KeyPair,
                 validity: timedelta = timedelta(days=7)) -> None:
        self.ca_name = ca_name
        self.key = key
        self.validity = validity
        self._revoked: Dict[int, datetime] = {}

    def revoke(self, cert: Certificate, when: datetime) -> None:
        if cert.issuer_org != self.ca_name:
            raise ValueError("cannot revoke a foreign certificate")
        self._revoked[cert.serial] = when

    def is_revoked(self, cert: Certificate) -> bool:
        return cert.serial in self._revoked

    def respond(
        self,
        cert: Certificate,
        now: datetime,
        scts: Tuple[SignedCertificateTimestamp, ...] = (),
    ) -> OcspResponse:
        """Produce a signed (optionally SCT-carrying) response."""
        if cert.issuer_org != self.ca_name:
            status = CertStatus.UNKNOWN
        elif cert.serial in self._revoked:
            status = CertStatus.REVOKED
        else:
            status = CertStatus.GOOD
        response = OcspResponse(
            issuer_org=self.ca_name,
            serial=cert.serial,
            status=status,
            produced_at=now,
            next_update=now + self.validity,
            sct_blob=encode_sct_list(list(scts)),
        )
        from dataclasses import replace

        return replace(
            response, signature=crypto.sign(self.key, response.signed_payload())
        )
