"""Certificate validation helpers used by the TLS scanner and analyzer."""

from __future__ import annotations

from datetime import datetime
from typing import Optional

from repro.x509 import crypto
from repro.x509.certificate import Certificate


def verify_certificate_signature(cert: Certificate, issuer_key: crypto.KeyPair) -> bool:
    """Check the CA's signature over the certificate TBS."""
    return crypto.verify(issuer_key, cert.tbs_bytes(), cert.signature)


def is_time_valid(cert: Certificate, now: datetime) -> bool:
    """Check the validity period."""
    return cert.not_before <= now <= cert.not_after


def hostname_matches(cert: Certificate, hostname: str) -> bool:
    """RFC 6125-style host matching with single-label wildcards."""
    target = hostname.lower().rstrip(".")
    for name in cert.dns_names():
        if _name_matches(name, target):
            return True
    return False


def _name_matches(pattern: str, hostname: str) -> bool:
    pattern = pattern.lower().rstrip(".")
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        head, sep, tail = hostname.partition(".")
        return bool(sep) and head != "" and tail == suffix
    return False


def validate_for_connection(
    cert: Certificate,
    hostname: str,
    now: datetime,
    issuer_key: Optional[crypto.KeyPair] = None,
) -> bool:
    """Full client-side check: time, name, and (optionally) signature."""
    if not is_time_valid(cert, now):
        return False
    if not hostname_matches(cert, hostname):
        return False
    if issuer_key is not None and not verify_certificate_signature(cert, issuer_key):
        return False
    return True
