"""Tests for the Bro-style SCT analyzer."""

import pytest

from repro.bro.analyzer import BroSctAnalyzer
from repro.tls.connection import TlsConnection
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceBug, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


@pytest.fixture()
def ca256():
    return CertificateAuthority("Bro CA", key_bits=256)


def connection(cert, tls_scts=(), ocsp_scts=(), weight=10, support=True):
    return TlsConnection(
        time=NOW,
        server_name="site.example",
        server_ip="192.0.2.1",
        certificate=cert,
        tls_extension_scts=tuple(tls_scts),
        ocsp_scts=tuple(ocsp_scts),
        client_signals_sct_support=support,
        weight=weight,
    )


def test_embedded_sct_channel_detected(ca256, fresh_logs):
    pair = ca256.issue(
        IssuanceRequest(("site.example",)),
        [fresh_logs["Google Pilot log"], fresh_logs["Google Icarus log"]],
        NOW,
    )
    analyzer = BroSctAnalyzer(fresh_logs)
    obs = analyzer.analyze(connection(pair.final_certificate))
    assert obs.presence.certificate
    assert not obs.presence.tls_extension
    assert obs.cert_sct_logs == ("Google Pilot log", "Google Icarus log")
    assert obs.weight == 10
    assert obs.day == NOW.date()


def test_tls_extension_channel(ca256, fresh_logs):
    pair = ca256.issue(IssuanceRequest(("e.example",), embed_scts=False), [], NOW)
    sct = fresh_logs["Venafi log"].add_chain(pair.final_certificate, NOW)
    analyzer = BroSctAnalyzer(fresh_logs)
    obs = analyzer.analyze(connection(pair.final_certificate, tls_scts=[sct]))
    assert obs.presence.tls_extension
    assert not obs.presence.certificate
    assert obs.tls_sct_logs == ("Venafi log",)


def test_ocsp_channel(ca256, fresh_logs):
    pair = ca256.issue(IssuanceRequest(("o.example",), embed_scts=False), [], NOW)
    sct = fresh_logs["DigiCert Log Server"].add_chain(pair.final_certificate, NOW)
    analyzer = BroSctAnalyzer(fresh_logs)
    obs = analyzer.analyze(connection(pair.final_certificate, ocsp_scts=[sct]))
    assert obs.presence.ocsp_staple
    assert obs.ocsp_sct_logs == ("DigiCert Log Server",)


def test_no_sct_connection(ca256, fresh_logs):
    pair = ca256.issue(IssuanceRequest(("p.example",), embed_scts=False), [], NOW)
    analyzer = BroSctAnalyzer(fresh_logs)
    obs = analyzer.analyze(connection(pair.final_certificate))
    assert not obs.presence.any


def test_connection_without_certificate(fresh_logs):
    analyzer = BroSctAnalyzer(fresh_logs)
    obs = analyzer.analyze(connection(None))
    assert not obs.presence.any


def test_client_support_passthrough(ca256, fresh_logs):
    pair = ca256.issue(IssuanceRequest(("c.example",), embed_scts=False), [], NOW)
    analyzer = BroSctAnalyzer(fresh_logs)
    assert analyzer.analyze(connection(pair.final_certificate, support=False)).client_support is False


def test_unknown_log_named(ca256, fresh_logs):
    from repro.ct.log import CTLog
    from repro.ct.loglist import log_key

    rogue = CTLog(name="Rogue", operator="R", key=log_key("Rogue", 256))
    pair = ca256.issue(IssuanceRequest(("r.example",)), [rogue], NOW)
    analyzer = BroSctAnalyzer(fresh_logs)  # rogue absent
    obs = analyzer.analyze(connection(pair.final_certificate))
    assert obs.cert_sct_logs == ("unknown log",)


def test_signature_validation_catches_buggy_cert(ca256, fresh_logs):
    good = ca256.issue(
        IssuanceRequest(("g.example",)), [fresh_logs["Google Pilot log"]], NOW
    )
    bad = ca256.issue(
        IssuanceRequest(("b.example",), ip_addresses=("192.0.2.5",)),
        [fresh_logs["Google Pilot log"]],
        NOW,
        bug=IssuanceBug.SAN_REORDER,
    )
    analyzer = BroSctAnalyzer(
        fresh_logs,
        issuer_key_hashes={"Bro CA": ca256.issuer_key_hash},
        validate_signatures=True,
    )
    assert analyzer.analyze(connection(good.final_certificate)).embedded_scts_valid
    assert not analyzer.analyze(connection(bad.final_certificate)).embedded_scts_valid


def test_validation_skipped_for_unknown_issuer(ca256, fresh_logs):
    bad = ca256.issue(
        IssuanceRequest(("u.example",), ip_addresses=("192.0.2.5",)),
        [fresh_logs["Google Pilot log"]],
        NOW,
        bug=IssuanceBug.SAN_REORDER,
    )
    analyzer = BroSctAnalyzer(fresh_logs, issuer_key_hashes={}, validate_signatures=True)
    # Without the issuer key hash the analyzer cannot reconstruct, so
    # it reports valid (same limitation as the live system).
    assert analyzer.analyze(connection(bad.final_certificate)).embedded_scts_valid


def test_stream_analysis_is_lazy(ca256, fresh_logs):
    pair = ca256.issue(IssuanceRequest(("s.example",), embed_scts=False), [], NOW)
    analyzer = BroSctAnalyzer(fresh_logs)
    stream = analyzer.analyze_stream(connection(pair.final_certificate) for _ in range(3))
    assert sum(1 for _ in stream) == 3


def test_cache_consistency_across_repeats(ca256, fresh_logs):
    pair = ca256.issue(
        IssuanceRequest(("cache.example",)), [fresh_logs["Google Pilot log"]], NOW
    )
    analyzer = BroSctAnalyzer(fresh_logs)
    first = analyzer.analyze(connection(pair.final_certificate))
    second = analyzer.analyze(connection(pair.final_certificate))
    assert first.cert_sct_logs == second.cert_sct_logs
