"""Tests for observation-stream persistence."""

from datetime import date

from repro.bro.analyzer import SctObservation
from repro.bro.sctlog import (
    line_to_observation,
    observation_to_line,
    read_observations,
    write_observations,
)
from repro.tls.connection import SctPresence


def make_obs(**overrides):
    fields = dict(
        day=date(2018, 5, 1),
        server_name="x.example",
        weight=42,
        presence=SctPresence(certificate=True, tls_extension=False, ocsp_staple=True),
        cert_sct_logs=("Google Pilot log",),
        tls_sct_logs=(),
        ocsp_sct_logs=("DigiCert Log Server",),
        client_support=False,
        embedded_scts_valid=True,
    )
    fields.update(overrides)
    return SctObservation(**fields)


def test_line_roundtrip():
    obs = make_obs()
    assert line_to_observation(observation_to_line(obs)) == obs


def test_roundtrip_preserves_presence_flags():
    obs = make_obs(presence=SctPresence())
    restored = line_to_observation(observation_to_line(obs))
    assert not restored.presence.any


def test_file_roundtrip(tmp_path):
    path = tmp_path / "scts.jsonl"
    observations = [make_obs(weight=i) for i in range(5)]
    assert write_observations(path, observations) == 5
    restored = list(read_observations(path))
    assert restored == observations


def test_read_skips_blank_lines(tmp_path):
    path = tmp_path / "scts.jsonl"
    path.write_text(observation_to_line(make_obs()) + "\n\n\n")
    assert len(list(read_observations(path))) == 1
