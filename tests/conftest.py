"""Shared fixtures.

Heavy objects (log sets with generated keys, CAs) are session-scoped:
key generation is deterministic, so sharing them across tests cannot
leak state except through log *contents* — tests that append to logs
build their own instances instead.
"""

from __future__ import annotations

import pytest

from repro.ct.loglist import build_default_logs
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture(scope="session")
def shared_logs():
    """Read-mostly default log set with fast keys."""
    return build_default_logs(with_capacities=False, key_bits=256)


@pytest.fixture()
def fresh_logs():
    """A log set tests may freely append to."""
    return build_default_logs(with_capacities=False, key_bits=256)


@pytest.fixture()
def ca():
    return CertificateAuthority("Test CA", key_bits=256)


@pytest.fixture()
def now():
    return utc_datetime(2018, 4, 18, 12, 0)


@pytest.fixture()
def rng():
    return SeededRng(1234, "tests")


@pytest.fixture()
def issued_pair(ca, fresh_logs, now):
    """A valid certificate with two embedded SCTs."""
    logs = [fresh_logs["Google Pilot log"], fresh_logs["Google Icarus log"]]
    return ca.issue(
        IssuanceRequest(("example.org", "www.example.org")), logs, now
    )
