"""Tests for the Section 3.2 adoption analysis."""

from datetime import date

import pytest

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption
from repro.workloads.traffic import UplinkTrafficWorkload


@pytest.fixture(scope="module")
def stats():
    workload = UplinkTrafficWorkload(
        connections_per_day=400,
        start=date(2017, 5, 1),
        end=date(2017, 7, 30),
        seed=13,
    )
    analyzer = BroSctAnalyzer(workload.logs)
    return adoption.aggregate(analyzer.analyze_stream(workload.stream()))


def test_total_sct_share_near_paper(stats):
    assert stats.share("with_any_sct") == pytest.approx(0.3261, abs=0.02)


def test_cert_channel_share(stats):
    assert stats.share("with_cert_sct") == pytest.approx(0.2140, abs=0.02)


def test_tls_channel_share(stats):
    assert stats.share("with_tls_sct") == pytest.approx(0.1121, abs=0.015)


def test_ocsp_is_rare(stats):
    assert stats.share("with_ocsp_sct") < 0.001


def test_client_support_share(stats):
    assert stats.share("client_support") == pytest.approx(0.6676, abs=0.02)


def test_overlaps_are_rare(stats):
    assert stats.overlap_cert_tls < stats.with_cert_sct * 0.001
    assert stats.overlap_cert_ocsp <= 100
    assert stats.overlap_tls_ocsp <= 3_000_000


def test_daily_series_covers_window(stats):
    days, series = adoption.figure2_series(stats)
    assert days[0] == date(2017, 5, 1)
    assert days[-1] == date(2017, 7, 30)
    assert set(series) == {"SCT_in_Cert", "SCT_in_TLS", "Total_SCT"}
    assert all(len(values) == len(days) for values in series.values())


def test_daily_shares_roughly_constant(stats):
    _, series = adoption.figure2_series(stats)
    total = series["Total_SCT"]
    non_peak = sorted(total)[: int(len(total) * 0.9)]
    assert max(non_peak) - min(non_peak) < 15.0


def test_figure2_total_at_least_max_channel(stats):
    _, series = adoption.figure2_series(stats)
    for cert, tls, total in zip(
        series["SCT_in_Cert"], series["SCT_in_TLS"], series["Total_SCT"]
    ):
        assert total >= max(cert, tls) - 1e-9


def test_peak_day_detected(stats):
    peaks = adoption.peak_days(stats, threshold_percent=45.0)
    assert date(2017, 7, 18) in peaks
    assert len(peaks) <= 3


def test_table1_ranking(stats):
    rows = adoption.table1(stats)
    assert rows[0].log_name == "Google Pilot log"
    assert rows[0].cert_share == pytest.approx(0.2869, abs=0.03)
    names = [row.log_name for row in rows]
    assert "Symantec log" in names[:3]
    assert "Google Rocketeer log" in names[:3]


def test_table1_tls_champion_is_symantec(stats):
    rows = adoption.table1(stats)
    symantec = next(row for row in rows if row.log_name == "Symantec log")
    assert symantec.tls_share == pytest.approx(0.4019, abs=0.04)


def test_table1_shares_sum_to_one(stats):
    rows = adoption.table1(stats, top=100)
    assert sum(row.cert_share for row in rows) == pytest.approx(1.0, abs=1e-6)


def test_table1_limits_rows(stats):
    assert len(adoption.table1(stats, top=5)) == 5


def test_empty_aggregation():
    stats = adoption.aggregate([])
    assert stats.total == 0
    assert stats.share("with_any_sct") == 0.0
    days, series = adoption.figure2_series(stats)
    assert days == []


def test_merge_stats_equals_full_aggregate():
    workload = UplinkTrafficWorkload(
        connections_per_day=60,
        start=date(2017, 5, 1),
        end=date(2017, 5, 20),
        seed=13,
    )
    analyzer = BroSctAnalyzer(workload.logs)
    observations = [analyzer.analyze(c) for c in workload.stream()]
    whole = adoption.aggregate(observations)
    chunked = adoption.merge_stats(
        adoption.aggregate(observations[start : start + 37])
        for start in range(0, len(observations), 37)
    )
    assert chunked == whole


def test_merge_stats_empty_and_identity():
    assert adoption.merge_stats([]) == adoption.AdoptionStats()
    one = adoption.AdoptionStats(total=5, with_any_sct=2)
    one.cert_log_observations = {"Pilot": 3}
    assert adoption.merge_stats([one]) == one
