"""Tests for the Section 4.3 enumeration pipeline."""

import pytest

from repro.core import enumeration, leakage
from repro.workloads.domains import DomainWorkload


@pytest.fixture(scope="module")
def corpus():
    return DomainWorkload(scale=1 / 25_000, seed=31).build()


@pytest.fixture(scope="module")
def stats(corpus):
    return leakage.analyze_names(corpus.ct_fqdns, corpus.psl)


@pytest.fixture(scope="module")
def experiment(stats, corpus):
    return enumeration.run_enumeration_experiment(
        stats, corpus, seed=41, with_ablations=True
    )


class TestConstruction:
    def test_eligible_labels_respect_threshold(self, stats, corpus):
        plan = enumeration.construct_candidates(stats, corpus)
        threshold = max(1, int(100_000 * corpus.scale))
        for label in plan.eligible_labels:
            assert stats.label_counts[label] >= threshold
        # Tail labels (ftp etc.) are below the threshold.
        assert "ftp" not in plan.eligible_labels
        assert "www" in plan.eligible_labels

    def test_excluded_suffixes_not_used(self, stats, corpus):
        plan = enumeration.construct_candidates(stats, corpus)
        for label, suffixes in plan.suffixes_per_label.items():
            assert not set(suffixes) & {"com", "net", "org"}

    def test_at_most_ten_suffixes_per_label(self, stats, corpus):
        plan = enumeration.construct_candidates(stats, corpus)
        for suffixes in plan.suffixes_per_label.values():
            assert len(suffixes) <= 10

    def test_known_ct_names_excluded(self, stats, corpus):
        plan = enumeration.construct_candidates(stats, corpus)
        known = set(corpus.ct_fqdns)
        assert not (set(plan.candidates) & known)

    def test_candidates_are_label_dot_domain(self, stats, corpus):
        plan = enumeration.construct_candidates(stats, corpus)
        for fqdn in plan.candidates[:100]:
            label, domain = plan.origin[fqdn]
            assert fqdn == f"{label}.{domain}"
            assert domain in corpus.domain_suffix


class TestGroundTruth:
    def test_shares_calibrated(self, experiment):
        plan, truth, _ = experiment
        domains = {plan.origin[c][1] for c in plan.candidates}
        wildcard_share = len(truth.wildcard_domains) / len(domains)
        assert wildcard_share == pytest.approx(0.29, abs=0.03)

    def test_existing_resolve_in_routed_space(self, experiment):
        from repro.dnscore.records import RecordType
        from repro.dnscore.resolver import RecursiveResolver
        from repro.util.timeutil import utc_datetime

        plan, truth, _ = experiment
        resolver = RecursiveResolver("check", truth.universe)
        sample = sorted(truth.existing)[:20]
        for fqdn in sample:
            result = resolver.resolve(
                fqdn, RecordType.A, now=utc_datetime(2018, 4, 27)
            )
            assert result.addresses
            assert all(truth.routing_table.contains(a) for a in result.addresses)


class TestVerification:
    def test_rates_near_paper(self, experiment):
        _, _, report = experiment
        assert report.rate("answered") == pytest.approx(0.381, abs=0.04)
        assert report.rate("control_answered") == pytest.approx(0.292, abs=0.04)
        assert report.rate("discovered") == pytest.approx(0.089, abs=0.02)

    def test_discoveries_are_existing(self, experiment):
        _, truth, report = experiment
        assert set(report.discovered_fqdns) <= truth.existing

    def test_sonar_split_consistent(self, experiment):
        _, _, report = experiment
        assert report.known_to_sonar + report.new_unknown == report.discovered
        assert report.new_unknown / max(1, report.discovered) > 0.85

    def test_ablation_without_controls_inflates(self, experiment):
        _, _, report = experiment
        assert report.discovered_without_controls > report.discovered * 2

    def test_ablation_without_routing_filter_inflates(self, experiment):
        _, _, report = experiment
        assert report.discovered_without_routing_filter > report.discovered


def test_threshold_sweep_monotone(stats, corpus):
    counts = []
    for threshold in (50_000, 100_000, 300_000):
        config = enumeration.EnumerationConfig(min_label_occurrences=threshold)
        plan = enumeration.construct_candidates(stats, corpus, config)
        counts.append(len(plan.candidates))
    assert counts[0] >= counts[1] >= counts[2]
    assert counts[2] < counts[0]
