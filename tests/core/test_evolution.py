"""Tests for the Section 2 / Figure 1 analyses."""

from datetime import date

import pytest

from repro.core import evolution
from repro.util.timeutil import utc_datetime
from repro.workloads.ca_profiles import CaLoggingWorkload
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture(scope="module")
def small_run():
    return CaLoggingWorkload(
        scale=1 / 500_000, end=date(2018, 4, 30), seed=7
    ).run()


def test_growth_series_is_cumulative(small_run):
    growth = evolution.cumulative_precert_growth(small_run.logs)
    for series in growth.values():
        values = [value for _, value in series]
        assert values == sorted(values)
        days = [day for day, _ in series]
        assert days == sorted(days)


def test_growth_dedups_across_logs(fresh_logs, now):
    ca = CertificateAuthority("Dedup CA", key_bits=256)
    # One precert submitted to two logs must count once.
    ca.issue(
        IssuanceRequest(("multi.example",)),
        [fresh_logs["Google Pilot log"], fresh_logs["Google Rocketeer log"]],
        now,
    )
    growth = evolution.cumulative_precert_growth(fresh_logs)
    assert growth["Dedup CA"][-1][1] == 1


def test_growth_respects_date_filter(fresh_logs):
    ca = CertificateAuthority("Window CA", key_bits=256)
    ca.issue(IssuanceRequest(("early.example",)), [fresh_logs["Google Pilot log"]],
             utc_datetime(2016, 1, 1))
    ca.issue(IssuanceRequest(("late.example",)), [fresh_logs["Google Pilot log"]],
             utc_datetime(2018, 1, 1))
    growth = evolution.cumulative_precert_growth(
        fresh_logs, start=date(2017, 1, 1)
    )
    assert growth["Window CA"][-1][1] == 1


def test_digicert_dominates_long_term(small_run):
    growth = evolution.cumulative_precert_growth(small_run.logs)
    at_2017 = {}
    for ca, series in growth.items():
        values = [v for d, v in series if d <= date(2017, 12, 31)]
        at_2017[ca] = values[-1] if values else 0
    assert max(at_2017, key=at_2017.get) == "DigiCert"


def test_lets_encrypt_dominates_daily_rate_after_march(small_run):
    shares = evolution.relative_daily_rates(small_run.logs)
    april_days = [d for d in shares if date(2018, 4, 5) <= d <= date(2018, 4, 25)]
    assert april_days
    # At this tiny scale daily counts are single digits and noisy, so
    # test mean shares over the window rather than per-day winners; the
    # benchmark at full scale shows per-day dominance too.
    mean_share = {}
    for day in april_days:
        for ca, value in shares[day].items():
            mean_share[ca] = mean_share.get(ca, 0.0) + value / len(april_days)
    assert max(mean_share, key=mean_share.get) == "Let's Encrypt"
    assert mean_share["Let's Encrypt"] > 0.4


def test_daily_shares_sum_to_one(small_run):
    shares = evolution.relative_daily_rates(small_run.logs)
    for day, per_ca in list(shares.items())[:30]:
        assert sum(per_ca.values()) == pytest.approx(1.0)


def test_matrix_is_sparse(small_run):
    matrix = evolution.ca_log_matrix(small_run.logs, "2018-04")
    assert 0 < matrix.density() < 0.5


def test_matrix_nimbus_load_comes_from_lets_encrypt(small_run):
    matrix = evolution.ca_log_matrix(small_run.logs, "2018-04")
    nimbus_total = matrix.col_total("Cloudflare Nimbus2018 Log")
    le_on_nimbus = matrix.get("Let's Encrypt", "Cloudflare Nimbus2018 Log")
    assert nimbus_total > 0
    assert le_on_nimbus / nimbus_total > 0.9


def test_top5_share_matches_paper(small_run):
    share = evolution.top_ca_share(small_run.logs, "2018-04", top_n=5)
    assert share > 0.97  # paper: 99 %


def test_top_ca_share_empty_month(small_run):
    assert evolution.top_ca_share(small_run.logs, "2013-01") == 0.0


def test_load_report_flags_nimbus(small_run):
    report = evolution.log_load_report(small_run.logs, "2018-04")
    assert "Cloudflare Nimbus2018 Log" in report.overloaded_logs
    assert report.gini_coefficient > 0.5
    assert 0 < report.top_share <= 1.0


def test_matrix_counts_entries_not_unique_certs(fresh_logs):
    ca = CertificateAuthority("Matrix CA", key_bits=256)
    ca.issue(
        IssuanceRequest(("m.example",)),
        [fresh_logs["Google Pilot log"], fresh_logs["Google Rocketeer log"]],
        utc_datetime(2018, 4, 10),
    )
    matrix = evolution.ca_log_matrix(fresh_logs, "2018-04")
    assert matrix.row_total("Matrix CA") == 2  # two entries, one cert


class TestRebalancing:
    def test_plan_reduces_concentration(self, small_run):
        plan = evolution.rebalancing_plan(small_run.logs, "2018-04")
        assert plan.gini_after < plan.gini_before
        assert plan.top_share_after < plan.top_share_before
        assert plan.gini_reduction > 0.5

    def test_plan_conserves_total_load(self, small_run):
        plan = evolution.rebalancing_plan(small_run.logs, "2018-04")
        before = sum(b for b, _ in plan.per_log.values())
        after = sum(a for _, a in plan.per_log.values())
        assert before == after

    def test_plan_excludes_unqualified_logs(self, small_run):
        plan = evolution.rebalancing_plan(small_run.logs, "2018-04")
        assert "Symantec Deneb log" not in plan.per_log

    def test_even_spread_is_near_uniform(self, small_run):
        plan = evolution.rebalancing_plan(small_run.logs, "2018-04")
        after = [a for _, a in plan.per_log.values()]
        assert max(after) - min(after) <= 1

    def test_empty_month(self, small_run):
        plan = evolution.rebalancing_plan(small_run.logs, "2013-01")
        assert plan.gini_before == 0.0
        assert plan.top_share_before == 0.0


class TestCrossovers:
    def test_lets_encrypt_overtakes_the_field(self, small_run):
        growth = evolution.cumulative_precert_growth(small_run.logs)
        crossings = evolution.crossover_dates(growth)
        # LE ends above Symantec/GlobalSign/StartCom and crossed them
        # after starting in March 2018.
        for overtaken in ("Symantec", "GlobalSign", "StartCom"):
            key = ("Let's Encrypt", overtaken)
            assert key in crossings, key
            assert crossings[key] >= date(2018, 3, 8)

    def test_no_self_crossovers(self, small_run):
        growth = evolution.cumulative_precert_growth(small_run.logs)
        crossings = evolution.crossover_dates(growth)
        assert all(a != b for a, b in crossings)

    def test_empty_growth(self):
        assert evolution.crossover_dates({}) == {}

    def test_crossover_requires_final_lead(self):
        growth = {
            "A": [(date(2018, 1, 1), 1), (date(2018, 1, 10), 100)],
            "B": [(date(2018, 1, 1), 50), (date(2018, 1, 10), 60)],
        }
        crossings = evolution.crossover_dates(growth)
        assert ("A", "B") in crossings
        assert ("B", "A") not in crossings
