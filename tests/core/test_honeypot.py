"""Tests for the Section 6 honeypot experiment."""


import pytest

from repro.core.honeypot import (
    CtHoneypotExperiment,
    LE_VALIDATION_ASN,
    QUASI_ASN,
    render_table4,
)


@pytest.fixture(scope="module")
def result():
    return CtHoneypotExperiment(seed=101).run()


@pytest.fixture(scope="module")
def rows(result):
    return result.table4()


def test_eleven_domains_in_three_batches(result):
    assert len(result.domains) == 11
    batch_days = {d.ct_entry_time.date() for d in result.domains}
    assert len(batch_days) == 3


def test_subdomain_labels_are_random_12_chars(result):
    for domain in result.domains:
        label = domain.fqdn.split(".")[0]
        assert len(label) == 12


def test_every_domain_receives_dns_queries(rows):
    for row in rows:
        assert row.query_count > 0
        assert row.first_dns is not None


def test_first_dns_within_minutes(rows):
    for row in rows:
        assert 60 <= row.dns_delta_s <= 300, row.letter
    # Paper's fastest was 73 s; ours should sit in the same regime.
    assert min(row.dns_delta_s for row in rows) < 120


def test_google_is_always_first(rows):
    for row in rows:
        assert row.first3_asns[0] == 15169


def test_query_and_as_counts_in_paper_range(rows):
    for row in rows:
        assert 20 <= row.query_count <= 110, row.letter
        assert 8 <= row.as_count <= 40, row.letter


def test_ca_validation_filtered_from_table(result, rows):
    # The validation queries exist in the raw log ...
    raw_le = [
        q for q in result.auth_server.query_log
        if q.source_asn == LE_VALIDATION_ASN
    ]
    assert raw_le
    # ... but never reach the per-domain analysis.
    for domain in result.domains:
        for query in result.queries_for_domain(domain):
            assert query.source_asn != LE_VALIDATION_ASN


def test_validation_happens_before_logging(result):
    for domain in result.domains:
        validation = [
            q for q in result.auth_server.queries_for(domain.fqdn)
            if q.source_asn == LE_VALIDATION_ASN
        ]
        assert validation
        assert all(q.time < domain.ct_entry_time for q in validation)


def test_http_connections_from_cloud_scanners(rows):
    immediate = [row for row in rows if row.letter not in ("C", "G")]
    for row in immediate:
        assert row.first_http is not None
        assert 50 * 60 <= row.http_delta_s <= 3.5 * 3600, row.letter
        assert 14061 in row.http_asns


def test_delayed_http_for_c_and_g(rows):
    by_letter = {row.letter: row for row in rows}
    assert by_letter["C"].http_delta_s > 15 * 86_400
    assert by_letter["G"].http_delta_s > 4 * 86_400


def test_ecs_exposure(result):
    subnets = result.unique_ecs_subnets()
    assert len(subnets) == 12
    counts = [count for _, count in subnets]
    assert counts[0] == 115
    assert counts[1] == 25
    assert counts[2] == 10
    assert result.ecs_query_count() == sum(counts)


def test_quasi_port_scanner_found(result):
    scanners = result.port_scanners()
    assert len(scanners) == 1
    (ip, asn), ports = next(iter(scanners.items()))
    assert asn == QUASI_ASN
    assert ports == 30


def test_ipv6_only_ca_validation(result):
    v6 = result.ipv6_inbound()
    assert v6
    assert {conn.src_asn for conn in v6} == {LE_VALIDATION_ASN}


def test_port_scan_does_not_pollute_http_column(rows, result):
    # The scanner connects without SNI, so Table 4's HTTP(S) column
    # only shows the cloud scanners.
    for row in rows:
        assert QUASI_ASN not in row.http_asns


def test_render_table4_contains_all_rows(rows):
    text = render_table4(rows)
    for letter in "ABCDEFGHIJK":
        assert f"\n{letter}  " in text or text.startswith(f"{letter}  ")
    assert "★15169" in text
    assert "◗14061" in text


def test_determinism():
    a = CtHoneypotExperiment(seed=5).run()
    b = CtHoneypotExperiment(seed=5).run()
    assert [r.query_count for r in a.table4()] == [r.query_count for r in b.table4()]


def test_seed_changes_details_not_shape():
    a = CtHoneypotExperiment(seed=5).run().table4()
    b = CtHoneypotExperiment(seed=6).run().table4()
    assert [r.letter for r in a] == [r.letter for r in b]
    assert any(
        ra.query_count != rb.query_count for ra, rb in zip(a, b)
    )


def test_no_scanner_follows_best_practices(result):
    hygiene = result.scanner_hygiene()
    assert hygiene  # some scanners connected
    assert not any(hygiene.values())  # none follows best practices
