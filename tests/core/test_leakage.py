"""Tests for the Section 4.2 leakage analysis."""

import pytest

from repro.core import leakage
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def test_counts_each_fqdn_once():
    stats = leakage.analyze_names(
        ["www.example.com", "WWW.example.com", "www.example.com."]
    )
    assert stats.unique_fqdns == 1
    assert stats.label_counts["www"] == 1


def test_invalid_names_filtered():
    stats = leakage.analyze_names(
        ["under_score.example.com", "-x.example.com", "localhost", "ok.example.com"]
    )
    assert stats.invalid_names == 3
    assert stats.unique_fqdns == 1


def test_wildcard_label_not_counted():
    stats = leakage.analyze_names(["*.example.com"])
    assert stats.unique_fqdns == 1
    assert "*" not in stats.label_counts
    assert stats.fqdns_with_subdomains == 0


def test_multi_label_names_count_all_labels():
    stats = leakage.analyze_names(["dev.api.example.co.uk"])
    assert stats.label_counts["dev"] == 1
    assert stats.label_counts["api"] == 1


def test_registrable_domain_contributes_no_labels():
    stats = leakage.analyze_names(["example.com", "example.co.uk"])
    assert stats.fqdns_with_subdomains == 0
    assert len(stats.label_counts) == 0


def test_per_suffix_counters():
    stats = leakage.analyze_names(
        ["git.a.tech", "git.b.tech", "www.a.tech", "www.c.com"]
    )
    assert stats.per_suffix_labels["tech"]["git"] == 2
    assert stats.per_suffix_labels["tech"]["www"] == 1
    assert stats.per_suffix_labels["com"]["www"] == 1
    assert stats.top_label_per_suffix()["tech"] == "git"


def test_shares():
    stats = leakage.analyze_names(
        [f"www.d{i}.com" for i in range(9)] + ["mail.d0.com"]
    )
    assert stats.label_share("www") == pytest.approx(0.9)
    assert stats.top_k_share(1) == pytest.approx(0.9)
    assert stats.top_k_share(10) == pytest.approx(1.0)


def test_shares_on_empty_stats():
    stats = leakage.analyze_names([])
    assert stats.label_share("www") == 0.0
    assert stats.top_k_share(10) == 0.0


def test_management_interface_counts():
    stats = leakage.analyze_names(
        ["cpanel.x.com", "whm.x.com", "webdisk.y.com", "www.z.com"]
    )
    counts = stats.management_interface_counts()
    assert counts == {"webdisk": 1, "cpanel": 1, "whm": 1}


def test_extraction_from_real_certificates(fresh_logs):
    ca = CertificateAuthority("Leak CA", key_bits=256)
    now = utc_datetime(2018, 4, 1)
    log = [fresh_logs["Google Pilot log"]]
    ca.issue(IssuanceRequest(("shop.site-a.com", "www.site-a.com")), log, now)
    ca.issue(IssuanceRequest(("mail.site-b.de",)), log, now)
    certs = [entry.certificate for entry in fresh_logs["Google Pilot log"].entries]
    stats = leakage.analyze_certificates(certs)
    assert stats.label_counts["shop"] == 1
    assert stats.label_counts["www"] == 1
    assert stats.label_counts["mail"] == 1


def test_wordlist_overlap():
    stats = leakage.analyze_names(["www.x.com", "api.x.com"])
    overlap = leakage.wordlist_overlap(["WWW", "api", "nope"], stats)
    assert overlap == ["api", "www"]


def test_map_reduce_chunks_equal_serial():
    names = [
        "www.a.com", "MAIL.a.com", "www.a.com", "*.b.org", "bad_label.c.net",
        "git.d.tech", "www.b.org", "shop.e.co.uk", "localhost", "api.f.io",
    ]
    serial = leakage.analyze_names(names)
    chunked = leakage.reduce_name_partials(
        [leakage.map_name_chunk(names[i : i + 3]) for i in range(0, len(names), 3)]
    )
    assert chunked == serial
    # Ranking tie-breaks depend on insertion order; it must match too.
    assert chunked.top_labels(10) == serial.top_labels(10)


def test_cross_chunk_duplicates_count_once():
    chunked = leakage.reduce_name_partials(
        [
            leakage.map_name_chunk(["www.dup.com", "api.x.com"]),
            leakage.map_name_chunk(["www.dup.com", "www.dup.com"]),
        ]
    )
    assert chunked.unique_fqdns == 2
    assert chunked.label_counts["www"] == 1
    assert chunked.total_names_seen == 4


def test_leakage_partial_codec_round_trip():
    partial = leakage.map_name_chunk(
        ["www.a.com", "*.b.org", "bad_label.c.net", "git.d.tech"]
    )
    decoded = leakage.decode_leakage_partial(
        leakage.encode_leakage_partial(partial)
    )
    assert decoded == partial
    assert list(decoded.candidates) == list(partial.candidates)
