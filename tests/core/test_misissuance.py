"""Tests for the Section 3.4 invalid-SCT audit."""

import pytest

from repro.core import misissuance
from repro.workloads.incidents import MisissuanceWorkload


@pytest.fixture(scope="module")
def audit():
    corpus = MisissuanceWorkload(healthy_certificates=60, seed=23).build()
    report = misissuance.audit_certificates(
        (pair.final_certificate for pair in corpus.pairs),
        corpus.issuer_key_hashes(),
        corpus.logs,
    )
    return corpus, report


def test_finds_exactly_sixteen(audit):
    _, report = audit
    assert report.invalid_certificate_count == 16


def test_four_cas_affected(audit):
    _, report = audit
    assert report.affected_cas == ["D-Trust", "GlobalSign", "NetLock", "TeliaSonera"]


def test_per_ca_counts_match_paper(audit):
    _, report = audit
    by_ca = {ca: len(findings) for ca, findings in report.by_ca().items()}
    assert by_ca == {"TeliaSonera": 1, "GlobalSign": 12, "D-Trust": 2, "NetLock": 1}


def test_no_false_positives(audit):
    corpus, report = audit
    found = {(f.ca_name, f.certificate.serial) for f in report.findings}
    assert found == set(corpus.injected)


def test_root_causes_match_bugs(audit):
    _, report = audit
    causes = {ca: findings[0].root_cause[0] for ca, findings in report.by_ca().items()}
    assert "SAN entry order" in causes["GlobalSign"]
    assert "extension order" in causes["D-Trust"]
    assert "reused" in causes["TeliaSonera"]
    assert "differ" in causes["NetLock"]


def test_counts_certificates_checked(audit):
    corpus, report = audit
    unique = {(p.final_certificate.issuer_org, p.final_certificate.serial)
              for p in corpus.pairs}
    assert report.certificates_checked == len(unique)


def test_duplicate_certificates_counted_once(audit):
    corpus, _ = audit
    doubled = [p.final_certificate for p in corpus.pairs] * 2
    report = misissuance.audit_certificates(
        doubled, corpus.issuer_key_hashes(), corpus.logs
    )
    assert report.invalid_certificate_count == 16


def test_unknown_issuer_skipped(audit):
    corpus, _ = audit
    report = misissuance.audit_certificates(
        (p.final_certificate for p in corpus.pairs),
        {},  # no issuer key hashes known
        corpus.logs,
    )
    assert report.invalid_certificate_count == 0
    assert report.certificates_with_embedded_scts > 0
