"""Tests for the Section 5 phishing detector."""

import pytest

from repro.core.phishdetect import PhishingDetector
from repro.workloads.phishing import PhishingWorkload


@pytest.fixture(scope="module")
def detector():
    return PhishingDetector()


class TestClassify:
    @pytest.mark.parametrize("name,service", [
        ("appleid.apple.com-7etr6eti.gq", "Apple"),
        ("paypal.com-account-security.money", "PayPal"),
        ("www-hotmail-login.live", "Microsoft"),
        ("accounts.google.co.am", "Google"),
        ("www.ebay.co.uk.dll7.bid", "eBay"),
    ])
    def test_paper_examples_detected(self, detector, name, service):
        assert detector.classify(name) == service

    @pytest.mark.parametrize("name", [
        "www.apple.com",          # legitimate Apple
        "id.icloud.com",
        "accounts.google.com",
        "signin.ebay.co.uk",
        "login.live.com",
        "www.paypal.com",
    ])
    def test_legitimate_domains_excluded(self, detector, name):
        assert detector.classify(name) is None

    @pytest.mark.parametrize("name", [
        "snapple.com",            # substring but not label-anchored
        "pineapple-farm.org",
        "grapple.net",
        "random-shop.example",
    ])
    def test_benign_not_flagged(self, detector, name):
        assert detector.classify(name) is None

    def test_label_boundary_matching(self, detector):
        assert detector.classify("shop.apple-store.tk") == "Apple"
        assert detector.classify("reapple.com") is None


class TestGovernment:
    @pytest.mark.parametrize("name", [
        "ato.gov.au.eng-atorefund.com",
        "hmrc.gov.uk-refund.cf",
        "refund.irs.gov.my-irs.com",
    ])
    def test_paper_examples(self, detector, name):
        assert detector.is_government_impersonation(name)

    def test_real_government_domains_not_flagged(self, detector):
        assert not detector.is_government_impersonation("www.ato.gov.au")
        assert not detector.is_government_impersonation("online.hmrc.gov.uk")


class TestScan:
    @pytest.fixture(scope="class")
    def scanned(self, detector):
        corpus = PhishingWorkload(seed=19).build()
        return corpus, detector.scan(corpus.names)

    def test_counts_match_ground_truth(self, scanned):
        corpus, report = scanned
        for service in ("Apple", "PayPal", "Microsoft", "Google", "eBay"):
            assert report.count(service) == corpus.phishing_count(service), service

    def test_table3_ordering(self, scanned):
        _, report = scanned
        rows = report.table3()
        assert [service for service, _, _ in rows[:2]] == ["Apple", "PayPal"]
        counts = [count for _, count, _ in rows]
        assert counts == sorted(counts, reverse=True)

    def test_ebay_suffix_affinity(self, scanned):
        _, report = scanned
        affinity = report.suffix_affinity("eBay")
        assert affinity.get("bid", 0) + affinity.get("review", 0) > 0.15

    def test_microsoft_live_affinity(self, scanned):
        _, report = scanned
        affinity = report.suffix_affinity("Microsoft")
        assert 0 < affinity.get("live", 0) < 0.2

    def test_no_benign_flagged(self, scanned):
        corpus, report = scanned
        flagged = {n for names in report.matches.values() for n in names}
        assert not flagged & {n.lower() for n in corpus.benign_names}

    def test_government_matches_found(self, scanned):
        corpus, report = scanned
        assert len(report.government_matches) >= len(corpus.government_names) - 2

    def test_dedup_in_scan(self, detector):
        report = detector.scan(["paypal-x.tk", "PAYPAL-X.TK", "paypal-x.tk"])
        assert report.count("PayPal") == 1
        assert report.names_scanned == 1

    def test_suffix_affinity_empty_service(self, detector):
        report = detector.scan([])
        assert report.suffix_affinity("Apple") == {}
