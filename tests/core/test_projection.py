"""Tests for the adoption projection model."""

from datetime import date

import pytest

from repro.core.projection import (
    DEFAULT_LIFETIME_MIX,
    LifetimeBucket,
    project_adoption,
    render_projection,
)


@pytest.fixture(scope="module")
def projection():
    # Start from the paper's observed 32.61 %.
    return project_adoption(0.3261)


def test_starts_at_current_share(projection):
    assert projection.projected_sct_share[0] == pytest.approx(0.3261)
    assert projection.days[0] == date(2018, 4, 18)


def test_monotonically_increasing(projection):
    shares = projection.projected_sct_share
    assert all(b >= a for a, b in zip(shares, shares[1:]))


def test_converges_below_one(projection):
    final = projection.projected_sct_share[-1]
    # 6 % of the non-SCT share never converts.
    ceiling = 0.3261 + (1 - 0.3261) * 0.94
    assert final == pytest.approx(ceiling, abs=0.01)
    assert final < 1.0


def test_90_day_bucket_converts_first():
    fast_only = project_adoption(
        0.3261,
        lifetime_mix=(LifetimeBucket("90-day", 1.0, 90),),
        never_convert_share=0.0,
    )
    # Fully converted after one 90-day lifetime.
    assert fast_only.share_on(date(2018, 7, 17)) == pytest.approx(1.0, abs=1e-6)


def test_milestone_dates_ordered(projection):
    d50 = projection.date_reaching(0.5)
    d75 = projection.date_reaching(0.75)
    d90 = projection.date_reaching(0.9)
    assert d50 < d75 < d90
    # Half of connections within the first year of replacement.
    assert d50 < date(2019, 4, 18)


def test_unreachable_milestone(projection):
    assert projection.date_reaching(0.999) is None


def test_share_on_clamps_to_range(projection):
    assert projection.share_on(date(2017, 1, 1)) == projection.projected_sct_share[0]
    assert projection.share_on(date(2030, 1, 1)) == projection.projected_sct_share[-1]


def test_input_validation():
    with pytest.raises(ValueError):
        project_adoption(1.5)
    with pytest.raises(ValueError):
        project_adoption(0.3, lifetime_mix=(LifetimeBucket("x", 0.5, 90),))


def test_default_mix_sums_to_one():
    assert sum(b.share for b in DEFAULT_LIFETIME_MIX) == pytest.approx(1.0)


def test_render(projection):
    text = render_projection(projection)
    assert "Projected CT adoption" in text
    assert "50%" in text
