"""Tests for the table/figure text renderers."""

from datetime import date

import pytest

from repro.core import adoption, report
from repro.core.leakage import analyze_names
from repro.bro.analyzer import SctObservation
from repro.tls.connection import SctPresence
from repro.util.stats import Counter2D


def make_obs(day, cert=False, tls=False, weight=100):
    return SctObservation(
        day=day,
        server_name="x",
        weight=weight,
        presence=SctPresence(certificate=cert, tls_extension=tls),
        cert_sct_logs=("Google Pilot log",) if cert else (),
        tls_sct_logs=("Symantec log",) if tls else (),
    )


@pytest.fixture()
def stats():
    observations = [
        make_obs(date(2017, 5, 1), cert=True),
        make_obs(date(2017, 5, 1)),
        make_obs(date(2017, 5, 2), tls=True),
        make_obs(date(2017, 5, 2)),
    ]
    return adoption.aggregate(observations)


def test_render_figure2(stats):
    text = report.render_figure2(stats)
    assert "Figure 2" in text
    assert "Total_SCT" in text
    assert "2017-05-01" in text


def test_render_table1(stats):
    text = report.render_table1(adoption.table1(stats))
    assert "Google Pilot log" in text
    assert "100.00%" in text  # sole cert log


def test_render_section32(stats):
    text = report.render_section32(stats)
    assert "total connections" in text
    assert "50.00%" in text  # 2 of 4 with SCT


def test_render_figure1a():
    growth = {
        "DigiCert": [(date(2015, 1, 1), 10), (date(2016, 1, 1), 100)],
        "Let's Encrypt": [(date(2018, 3, 10), 500)],
    }
    text = report.render_figure1a(growth, weight=1000)
    assert "Figure 1a" in text
    assert "DigiCert" in text
    assert "500k" in text  # 500 * 1000 scaled


def test_render_figure1a_empty():
    assert report.render_figure1a({}) == "(no data)"


def test_render_figure1b():
    shares = {
        date(2018, 3, 1): {"Let's Encrypt": 0.8, "DigiCert": 0.2},
        date(2018, 4, 1): {"Let's Encrypt": 0.9, "DigiCert": 0.1},
    }
    text = report.render_figure1b(shares)
    assert "2018-03" in text and "2018-04" in text
    assert "80%" in text


def test_render_figure1c():
    matrix = Counter2D()
    matrix.add("Let's Encrypt", "Cloudflare Nimbus2018 Log", 100)
    matrix.add("DigiCert", "DigiCert Log Server", 10)
    text = report.render_figure1c(matrix)
    assert "Figure 1c" in text
    assert "density" in text


def test_render_table2():
    stats = analyze_names(["www.a.com", "www.b.com", "mail.a.com"])
    text = report.render_table2(stats, weight=1000)
    assert "www" in text
    assert "top-10 share" in text


def test_render_table3():
    from repro.core.phishdetect import PhishingDetector

    detector = PhishingDetector()
    rep = detector.scan(["appleid-x.gq", "paypal-y.tk", "benign.example"])
    text = report.render_table3(rep, weight=100)
    assert "Apple" in text
    assert "government" in text


def test_render_section34():
    from repro.core import misissuance
    from repro.workloads.incidents import MisissuanceWorkload

    corpus = MisissuanceWorkload(healthy_certificates=5, seed=1).build()
    audit = misissuance.audit_certificates(
        (p.final_certificate for p in corpus.pairs),
        corpus.issuer_key_hashes(),
        corpus.logs,
    )
    text = report.render_section34(audit)
    assert "16" in text
    assert "GlobalSign" in text


def test_render_section43():
    from repro.core.enumeration import EnumerationReport

    rep = EnumerationReport(
        candidate_count=1000, answered=380, control_answered=290,
        discovered=90, known_to_sonar=5, new_unknown=85,
        eligible_labels=["www"],
        discovered_without_controls=380,
        discovered_without_routing_filter=95,
    )
    text = report.render_section43(rep, scale=1 / 1000)
    assert "38.0%" in text
    assert "ablation" in text


def test_render_log_load():
    from repro.core.evolution import LogLoadReport

    text = report.render_log_load(
        LogLoadReport(
            entries_per_log={"A": 10},
            gini_coefficient=0.8,
            top_share=0.4,
            overloaded_logs=("Cloudflare Nimbus2018 Log",),
            matrix_density=0.2,
        )
    )
    assert "0.80" in text
    assert "Nimbus2018" in text


def test_render_advisories():
    from repro.core.watchlist import Advisory
    from repro.util.timeutil import utc_datetime

    advisories = [
        Advisory(
            operator="ops",
            watched_domain="example.org",
            kind="lookalike",
            certificate_name="example.org-login.tk",
            log_name="Google Pilot log",
            observed_at=utc_datetime(2018, 5, 1, 9, 30),
            detail="embeds 'example.org'",
        )
    ]
    text = report.render_advisories(advisories)
    assert "lookalike" in text
    assert "example.org-login.tk" in text
    assert report.render_advisories([]) == "No advisories."


def test_render_audit():
    from repro.ct.auditor import AuditFinding, AuditReport

    audit = AuditReport(sths_verified=3, consistency_checks=2, inclusion_checks=1)
    audit.add(AuditFinding("Some Log", "split-view", "roots diverge"))
    text = report.render_audit(audit)
    assert "STHs verified:       3" in text
    assert "split-view" in text
