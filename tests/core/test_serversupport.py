"""Tests for the Section 3.3 active-scan analysis."""

import pytest

from repro.core import serversupport
from repro.tls.scanner import TlsScanner
from repro.util.timeutil import utc_datetime
from repro.workloads.hosting import HostingWorkload

NOW = utc_datetime(2018, 5, 18)


@pytest.fixture(scope="module")
def scan():
    population = HostingWorkload(scale=1 / 40_000, seed=17).build()
    scanner = TlsScanner(population.resolver(), population.endpoints)
    records = scanner.scan(population.domains, NOW)
    names = {log.log_id: log.name for log in population.logs.values()}
    return population, records, serversupport.analyze_scan(records, names)


def test_embedded_share_near_paper(scan):
    _, _, stats = scan
    assert stats.embedded_share == pytest.approx(0.687, abs=0.02)


def test_unique_certificate_count(scan):
    population, records, stats = scan
    assert stats.unique_certificates == len(population.domains)


def test_tls_ext_and_ocsp_counts(scan):
    _, _, stats = scan
    assert stats.certs_with_tls_ext_sct >= 1
    assert stats.certs_with_ocsp_sct >= 1
    assert stats.certs_with_tls_ext_sct < stats.certs_with_embedded_sct


def test_sni_multiplexing_near_12(scan):
    _, _, stats = scan
    assert stats.certs_per_sct_ip == pytest.approx(12.0, abs=2.0)


def test_per_cert_log_ranking(scan):
    _, _, stats = scan
    top = serversupport.top_per_cert_logs(stats, top=4)
    names = [name for name, _ in top]
    assert names[0] == "Cloudflare Nimbus2018 Log"
    assert names[1] == "Google Icarus log"
    shares = dict(top)
    assert shares["Cloudflare Nimbus2018 Log"] == pytest.approx(0.74, abs=0.05)
    assert shares["Google Icarus log"] == pytest.approx(0.71, abs=0.05)


def test_other_logs_below_ten_percent(scan):
    _, _, stats = scan
    top4 = {name for name, _ in serversupport.top_per_cert_logs(stats, top=4)}
    for name, share in stats.per_cert_log_shares.items():
        if name not in top4:
            assert share < 0.10, name


def test_contrast_orders_by_gap(scan):
    _, _, stats = scan
    traffic_shares = {"Google Pilot log": 0.2869, "Cloudflare Nimbus2018 Log": 0.0005}
    rows = serversupport.passive_vs_active_contrast(traffic_shares, stats)
    gaps = [abs(traffic - cert) for _, traffic, cert in rows]
    assert gaps == sorted(gaps, reverse=True)
    # Nimbus: near-zero in traffic, dominant per certificate.
    nimbus = next(row for row in rows if row[0] == "Cloudflare Nimbus2018 Log")
    assert nimbus[2] > 0.5 > nimbus[1]


def test_empty_scan():
    stats = serversupport.analyze_scan([], {})
    assert stats.unique_certificates == 0
    assert stats.embedded_share == 0.0
    assert stats.certs_per_sct_ip == 0.0
