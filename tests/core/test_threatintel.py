"""Tests for honeypot-derived threat intelligence."""

import pytest

from repro.core.honeypot import CtHoneypotExperiment
from repro.core.threatintel import (
    BLOCK_THRESHOLD,
    build_threat_report,
    render_threat_report,
)


@pytest.fixture(scope="module")
def report():
    result = CtHoneypotExperiment(seed=77).run()
    return build_threat_report(result)


def test_quasi_scanner_tops_ranking(report):
    top = report.ranked()[0]
    assert top.asn == 29073
    assert len(top.distinct_ports) == 15
    assert len(top.touched_machines) == 2


def test_quasi_scanner_blocklisted(report):
    blocklist = report.blocklist()
    assert blocklist
    assert report.actors[blocklist[0]].asn == 29073


def test_pure_resolvers_not_blocklisted(report):
    """Google/1&1 only resolve names — expected behaviour, score 0."""
    blocked_asns = {report.actors[ip].asn for ip in report.blocklist()}
    assert 15169 not in blocked_asns
    assert 8560 not in blocked_asns


def test_cloud_crawlers_scored_but_below_threshold(report):
    """DigitalOcean/Amazon connect (HTTP) but do not port-scan."""
    do_actors = [
        a for a in report.actors.values() if a.asn == 14061 and a.connections
    ]
    assert do_actors
    for actor in do_actors:
        assert 0 < actor.score() < BLOCK_THRESHOLD
    # The DO *resolver* (DNS only) scores zero.
    do_resolvers = [
        a for a in report.actors.values()
        if a.asn == 14061 and not a.connections
    ]
    assert do_resolvers and all(a.score() == 0.0 for a in do_resolvers)


def test_ecs_correlation_links_stub_to_scanner(report):
    """The paper's Section 6.2 linkage: the heavy scanner's subnet
    appeared in 25 ECS-carrying DNS queries."""
    top = report.ranked()[0]
    assert top.ecs_correlated_queries == 25


def test_ca_validation_excluded(report):
    assert all(actor.asn != 64501 for actor in report.actors.values())


def test_scanners_listing(report):
    scanners = report.scanners()
    assert len(scanners) == 1
    assert scanners[0].asn == 29073


def test_render_contains_ranking_and_blocklist(report):
    text = render_threat_report(report)
    assert "Quasi Networks" in text
    assert "blocklist" in text
    assert "ECS q" in text


def test_ranking_is_sorted(report):
    scores = [a.score() for a in report.ranked()]
    assert scores == sorted(scores, reverse=True)
