"""Tests for the CT watchlist/advisory service."""

from datetime import timedelta

import pytest

from repro.core.watchlist import WatchEntry, WatchlistService
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 9, 0)


@pytest.fixture()
def service():
    svc = WatchlistService(seed=3)
    svc.watch(WatchEntry("paypal.com", "paypal-secops",
                         expected_issuers=("DigiCert",)))
    svc.watch(WatchEntry("example.org", "example-ops"))
    return svc


class TestClassification:
    def test_own_domain_issuance(self, service):
        match = service.classify_name("www.paypal.com", "DigiCert")
        assert match is not None
        entry, kind, _ = match
        assert kind == "issuance"
        assert entry.operator == "paypal-secops"

    def test_unauthorized_issuer(self, service):
        _, kind, detail = service.classify_name("www.paypal.com", "Shady CA")
        assert kind == "unauthorized-issuance"
        assert "Shady CA" in detail

    def test_lookalike_embedding_owner_label(self, service):
        _, kind, _ = service.classify_name("paypal-account-security.money", "Any")
        assert kind == "lookalike"

    def test_lookalike_embedding_full_domain(self, service):
        _, kind, _ = service.classify_name("paypal.com-verify.tk", "Any")
        assert kind == "lookalike"

    def test_unrelated_name_ignored(self, service):
        assert service.classify_name("blog.randomsite.net", "Any") is None

    def test_substring_without_boundary_ignored(self, service):
        # "notpaypal" does not start a label with the owner token.
        assert service.classify_name("notpaypalish.com", "Any") is None

    def test_any_issuer_ok_without_expected_list(self, service):
        _, kind, _ = service.classify_name("www.example.org", "Whatever CA")
        assert kind == "issuance"


class TestProcessing:
    def test_advisories_from_log_stream(self, service, fresh_logs):
        log = fresh_logs["Google Pilot log"]
        good_ca = CertificateAuthority("DigiCert", key_bits=256)
        rogue_ca = CertificateAuthority("Rogue CA", key_bits=256)
        phisher = CertificateAuthority("Budget CA", key_bits=256)

        good_ca.issue(IssuanceRequest(("www.paypal.com",)), [log], NOW)
        rogue_ca.issue(IssuanceRequest(("login.paypal.com",)), [log],
                       NOW + timedelta(minutes=1))
        phisher.issue(IssuanceRequest(("paypal.com-secure-login.gq",)), [log],
                      NOW + timedelta(minutes=2))
        phisher.issue(IssuanceRequest(("unrelated.shop",)), [log],
                      NOW + timedelta(minutes=3))

        advisories = service.process([log])
        kinds = sorted(a.kind for a in advisories)
        assert kinds == ["issuance", "lookalike", "unauthorized-issuance"]
        assert all(a.operator == "paypal-secops" for a in advisories)
        # Latency comes from the streaming monitor.
        assert all(a.observed_at > NOW for a in advisories)

    def test_cursor_no_duplicate_advisories(self, service, fresh_logs):
        log = fresh_logs["Google Pilot log"]
        ca = CertificateAuthority("Budget CA", key_bits=256)
        ca.issue(IssuanceRequest(("paypal-refund.cf",)), [log], NOW)
        first = service.process([log])
        second = service.process([log])
        assert len(first) == 1
        assert second == []

    def test_advisories_for_operator(self, service, fresh_logs):
        log = fresh_logs["Google Pilot log"]
        ca = CertificateAuthority("Budget CA", key_bits=256)
        ca.issue(IssuanceRequest(("paypal-login.tk",)), [log], NOW)
        ca.issue(IssuanceRequest(("shop.example.org",)), [log], NOW)
        service.process([log])
        assert len(service.advisories_for("paypal-secops")) == 1
        assert len(service.advisories_for("example-ops")) == 1
        assert service.advisories_for("nobody") == []

    def test_one_advisory_per_cert_per_kind(self, service, fresh_logs):
        log = fresh_logs["Google Pilot log"]
        ca = CertificateAuthority("Budget CA", key_bits=256)
        # Two lookalike SANs in one certificate: one advisory.
        ca.issue(
            IssuanceRequest(("paypal-a.tk", "paypal-b.tk")), [log], NOW
        )
        advisories = service.process([log])
        assert len(advisories) == 1


def test_watched_domains_listing(service):
    assert service.watched_domains() == ["example.org", "paypal.com"]


def test_watchlist_consumes_cert_feed(service, fresh_logs):
    """The watchlist can ride a shared CertStream-style feed."""
    from datetime import timedelta

    from repro.ct.feed import CertFeed

    log = fresh_logs["Google Icarus log"]
    feed = CertFeed([log])
    feed.subscribe("watchlist", service.feed_subscriber())
    ca = CertificateAuthority("Budget CA", key_bits=256)
    ca.issue(IssuanceRequest(("paypal-via-feed.gq",)), [log], NOW)
    ca.issue(IssuanceRequest(("nothing-to-see.shop",)), [log],
             NOW + timedelta(minutes=1))
    feed.run_once(NOW + timedelta(minutes=2))
    assert len(service.advisories) == 1
    advisory = service.advisories[0]
    assert advisory.kind == "lookalike"
    assert advisory.log_name == "Google Icarus log"
