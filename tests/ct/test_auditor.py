"""Tests for log auditing and split-view gossip."""

from datetime import timedelta

import pytest

from repro.ct.auditor import GossipPool, LogAuditor, make_split_view_log
from repro.ct.log import CTLog, SignedTreeHead
from repro.ct.loglist import log_key
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log():
    return CTLog(name="Audited Log", operator="T", key=log_key("Audited Log", 256))


@pytest.fixture()
def ca256():
    return CertificateAuthority("Audit CA", key_bits=256)


def grow(ca, log, count, start, prefix="g"):
    for i in range(count):
        ca.issue(
            IssuanceRequest((f"{prefix}{i}.example",)), [log],
            start + timedelta(minutes=i),
        )


def test_honest_log_audits_clean(log, ca256, now):
    auditor = LogAuditor(log)
    auditor.poll(now)
    grow(ca256, log, 5, now)
    auditor.poll(now + timedelta(hours=1))
    grow(ca256, log, 7, now + timedelta(hours=2))
    auditor.poll(now + timedelta(hours=3))
    assert auditor.report.clean
    assert auditor.report.sths_verified == 3
    assert auditor.report.consistency_checks == 2


def test_shrinking_tree_flagged(log, ca256, now):
    auditor = LogAuditor(log)
    grow(ca256, log, 4, now)
    big = log.get_sth(now + timedelta(minutes=30))
    auditor.observe_sth(big, now + timedelta(minutes=30))
    # Fabricate an older/smaller STH presented later.
    small_root = log.tree.root(2)
    payload = SignedTreeHead.signed_payload(2, 0, small_root)
    from repro.x509 import crypto

    small = SignedTreeHead(2, 0, small_root, crypto.sign(log.key, payload))
    auditor.observe_sth(small, now + timedelta(hours=1))
    assert any(f.kind == "inconsistent-history" for f in auditor.report.findings)


def test_bad_sth_signature_flagged(log, now):
    auditor = LogAuditor(log)
    sth = log.get_sth(now)
    from dataclasses import replace

    forged = replace(sth, signature=b"\x00" * len(sth.signature))
    auditor.observe_sth(forged, now)
    assert any(f.kind == "bad-sth-signature" for f in auditor.report.findings)


def test_sct_inclusion_audit_passes(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("inc.example",)), [log], now)
    auditor = LogAuditor(log)
    assert auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=1),
    )
    assert auditor.report.clean


def test_broken_promise_within_mmd_is_missing_entry(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("gone.example",)), [log], now)
    # Simulate a log that dropped the entry.
    log.entries.clear()
    auditor = LogAuditor(log)
    assert not auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=1),
    )
    assert auditor.report.findings[0].kind == "missing-entry"


def test_broken_promise_after_mmd_is_violation(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("late.example",)), [log], now)
    log.entries.clear()
    auditor = LogAuditor(log)
    auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=25),  # past the 24h MMD
    )
    assert auditor.report.findings[0].kind == "mmd-violation"


class TestGossip:
    def test_consistent_views_are_clean(self, log, ca256, now):
        grow(ca256, log, 3, now)
        pool = GossipPool()
        sth = log.get_sth(now + timedelta(hours=1))
        assert pool.submit(log.name, sth, "vantage-a") is None
        assert pool.submit(log.name, sth, "vantage-b") is None
        assert pool.clean
        assert pool.sths_gossiped == 2

    def test_split_view_detected(self, log, ca256, now):
        grow(ca256, log, 6, now)
        twin = make_split_view_log(log, fork_at=4)
        # Grow both views to the same size with different content.
        grow(ca256, log, 1, now + timedelta(hours=1), prefix="honest")
        # twin already has 5 entries (4 shared + 1 fabricated); honest
        # log now has 7 — align sizes by trimming honest comparison to
        # what each vantage reports at its own size.
        pool = GossipPool()
        honest_sth = log.get_sth(now + timedelta(hours=2))
        # Make the twin the same tree size as the honest log.
        while twin.tree.size < honest_sth.tree_size:
            twin.tree.append(b"more-equivocation")
        twin_sth = twin.get_sth(now + timedelta(hours=2))
        assert honest_sth.tree_size == twin_sth.tree_size
        assert pool.submit(log.name, honest_sth, "vantage-a") is None
        finding = pool.submit(log.name, twin_sth, "vantage-b")
        assert finding is not None
        assert finding.kind == "split-view"
        assert not pool.clean

    def test_different_sizes_do_not_conflict(self, log, ca256, now):
        grow(ca256, log, 2, now)
        pool = GossipPool()
        first = log.get_sth(now + timedelta(minutes=5))
        grow(ca256, log, 2, now + timedelta(minutes=10))
        second = log.get_sth(now + timedelta(minutes=20))
        pool.submit(log.name, first, "a")
        assert pool.submit(log.name, second, "b") is None
        assert pool.clean
