"""Tests for log auditing and split-view gossip."""

from datetime import timedelta

import pytest

from repro.ct.auditor import GossipPool, LogAuditor, make_split_view_log
from repro.ct.log import CTLog, SignedTreeHead
from repro.ct.merkle import leaf_hash
from repro.ct.loglist import log_key
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log():
    return CTLog(name="Audited Log", operator="T", key=log_key("Audited Log", 256))


@pytest.fixture()
def ca256():
    return CertificateAuthority("Audit CA", key_bits=256)


def grow(ca, log, count, start, prefix="g"):
    for i in range(count):
        ca.issue(
            IssuanceRequest((f"{prefix}{i}.example",)), [log],
            start + timedelta(minutes=i),
        )


def test_honest_log_audits_clean(log, ca256, now):
    auditor = LogAuditor(log)
    auditor.poll(now)
    grow(ca256, log, 5, now)
    auditor.poll(now + timedelta(hours=1))
    grow(ca256, log, 7, now + timedelta(hours=2))
    auditor.poll(now + timedelta(hours=3))
    assert auditor.report.clean
    assert auditor.report.sths_verified == 3
    assert auditor.report.consistency_checks == 2


def test_shrinking_tree_flagged(log, ca256, now):
    auditor = LogAuditor(log)
    grow(ca256, log, 4, now)
    big = log.get_sth(now + timedelta(minutes=30))
    auditor.observe_sth(big, now + timedelta(minutes=30))
    # Fabricate an older/smaller STH presented later.
    small_root = log.tree.root(2)
    payload = SignedTreeHead.signed_payload(2, 0, small_root)
    from repro.x509 import crypto

    small = SignedTreeHead(2, 0, small_root, crypto.sign(log.key, payload))
    auditor.observe_sth(small, now + timedelta(hours=1))
    assert any(f.kind == "inconsistent-history" for f in auditor.report.findings)


def test_bad_sth_signature_flagged(log, now):
    auditor = LogAuditor(log)
    sth = log.get_sth(now)
    from dataclasses import replace

    forged = replace(sth, signature=b"\x00" * len(sth.signature))
    auditor.observe_sth(forged, now)
    assert any(f.kind == "bad-sth-signature" for f in auditor.report.findings)


def test_sct_inclusion_audit_passes(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("inc.example",)), [log], now)
    auditor = LogAuditor(log)
    assert auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=1),
    )
    assert auditor.report.clean


def test_broken_promise_within_mmd_is_missing_entry(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("gone.example",)), [log], now)
    # Simulate a log that dropped the entry.
    log.entries.clear()
    auditor = LogAuditor(log)
    assert not auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=1),
    )
    assert auditor.report.findings[0].kind == "missing-entry"


def test_broken_promise_after_mmd_is_violation(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("late.example",)), [log], now)
    log.entries.clear()
    auditor = LogAuditor(log)
    auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash,
        now + timedelta(hours=25),  # past the 24h MMD
    )
    assert auditor.report.findings[0].kind == "mmd-violation"


class TestGossip:
    def test_consistent_views_are_clean(self, log, ca256, now):
        grow(ca256, log, 3, now)
        pool = GossipPool()
        sth = log.get_sth(now + timedelta(hours=1))
        assert pool.submit(log.name, sth, "vantage-a") is None
        assert pool.submit(log.name, sth, "vantage-b") is None
        assert pool.clean
        assert pool.sths_gossiped == 2

    def test_split_view_detected(self, log, ca256, now):
        grow(ca256, log, 6, now)
        # Pad the twin to the honest log's size: same tree size,
        # different content — the equivocation gossip catches.
        twin = make_split_view_log(log, fork_at=4, pad_to=log.size)
        pool = GossipPool()
        honest_sth = log.get_sth(now + timedelta(hours=2))
        twin_sth = twin.get_sth(now + timedelta(hours=2))
        assert honest_sth.tree_size == twin_sth.tree_size
        assert pool.submit(log.name, honest_sth, "vantage-a") is None
        finding = pool.submit(log.name, twin_sth, "vantage-b")
        assert finding is not None
        assert finding.kind == "split-view"
        assert not pool.clean

    def test_same_root_from_many_reporters_stays_clean(self, log, ca256, now):
        grow(ca256, log, 4, now)
        pool = GossipPool()
        sth = log.get_sth(now + timedelta(minutes=30))
        for reporter in (f"vantage-{i}" for i in range(12)):
            assert pool.submit(log.name, sth, reporter) is None
        assert pool.clean
        assert pool.sths_gossiped == 12

    def test_multiple_forks_each_yield_a_finding(self, log, ca256, now):
        grow(ca256, log, 6, now)
        fork_a = make_split_view_log(log, fork_at=3, pad_to=log.size)
        fork_b = make_split_view_log(log, fork_at=5, pad_to=log.size)
        assert fork_a.tree.root() != fork_b.tree.root()
        pool = GossipPool()
        when = now + timedelta(hours=1)
        pool.submit(log.name, log.get_sth(when), "honest-client")
        assert pool.submit(log.name, fork_a.get_sth(when), "victim-a")
        assert pool.submit(log.name, fork_b.get_sth(when), "victim-b")
        assert len(pool.findings) == 2
        assert len(pool.equivocations) == 2
        assert {f.kind for f in pool.findings} == {"split-view"}

    def test_repeated_equivocating_sth_not_duplicated(self, log, ca256, now):
        grow(ca256, log, 6, now)
        twin = make_split_view_log(log, fork_at=4, pad_to=log.size)
        pool = GossipPool()
        when = now + timedelta(hours=1)
        pool.submit(log.name, log.get_sth(when), "honest-client")
        twin_sth = twin.get_sth(when)
        assert pool.submit(log.name, twin_sth, "victim-a") is not None
        # The same equivocating root reported again — by the same or
        # another vantage — must not produce a second finding.
        assert pool.submit(log.name, twin_sth, "victim-a") is None
        assert pool.submit(log.name, twin_sth, "victim-b") is None
        later = twin.get_sth(when + timedelta(minutes=5))
        assert pool.submit(log.name, later, "victim-c") is None
        assert len(pool.findings) == 1

    def test_findings_carry_timestamp_and_obs(self, log, ca256, now):
        from repro.obs import EventLog, MetricsRegistry

        grow(ca256, log, 6, now)
        twin = make_split_view_log(log, fork_at=4, pad_to=log.size)
        metrics = MetricsRegistry()
        events = EventLog()
        pool = GossipPool(metrics=metrics, events=events)
        when = now + timedelta(hours=1)
        pool.submit(log.name, log.get_sth(when), "vantage-a", now=when)
        finding = pool.submit(log.name, twin.get_sth(when), "vantage-b", now=when)
        assert finding is not None
        assert finding.observed_at == when
        snapshot = metrics.snapshot()
        assert (
            snapshot.counters[f"auditor.findings{{kind=split-view,log={log.name}}}"]
            == 1
        )
        assert snapshot.counters[f"gossip.sths{{log={log.name}}}"] == 2
        kinds = [record["kind"] for record in events.tail()]
        assert kinds.count("audit_finding") == 1

    def test_split_view_twin_is_servable(self, log, ca256, now):
        grow(ca256, log, 6, now)
        twin = make_split_view_log(log, fork_at=4, pad_to=log.size)
        # The fabricated tail is made of full LogEntry records: the
        # tree and the entry list agree, so the twin can answer
        # get-entries/get-sth like any honest log.
        assert twin.tree.size == len(twin.entries) == log.size
        tail = twin.get_entries(4, twin.size - 1)
        assert [entry.index for entry in tail] == list(range(4, twin.size))
        for entry in tail:
            assert entry.certificate.dns_names()
            assert twin.tree.leaf_index(leaf_hash(entry.leaf_input)) == entry.index

    def test_make_split_view_requires_divergence(self, log, ca256, now):
        grow(ca256, log, 4, now)
        with pytest.raises(ValueError):
            make_split_view_log(log, fork_at=3, pad_to=3)

    def test_different_sizes_do_not_conflict(self, log, ca256, now):
        grow(ca256, log, 2, now)
        pool = GossipPool()
        first = log.get_sth(now + timedelta(minutes=5))
        grow(ca256, log, 2, now + timedelta(minutes=10))
        second = log.get_sth(now + timedelta(minutes=20))
        pool.submit(log.name, first, "a")
        assert pool.submit(log.name, second, "b") is None
        assert pool.clean
