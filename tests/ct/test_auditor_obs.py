"""Tests for the STH auditor's metrics/events instrumentation."""

from dataclasses import replace
from datetime import timedelta

import pytest

from repro.ct.auditor import LogAuditor, make_split_view_log
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.obs import EventLog, MetricsRegistry
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log():
    return CTLog(name="Obs Log", operator="T", key=log_key("Obs Log", 256))


@pytest.fixture()
def ca256():
    return CertificateAuthority("Obs CA", key_bits=256)


def grow(ca, log, count, start, prefix="g"):
    for i in range(count):
        ca.issue(
            IssuanceRequest((f"{prefix}{i}.example",)), [log],
            start + timedelta(minutes=i),
        )


def test_clean_polls_record_latency_gauge_and_counters(log, ca256, now):
    metrics = MetricsRegistry()
    events = EventLog()
    auditor = LogAuditor(log, metrics=metrics, events=events)
    auditor.poll(now)
    grow(ca256, log, 5, now)
    auditor.poll(now + timedelta(hours=1))
    grow(ca256, log, 2, now + timedelta(hours=2))
    auditor.poll(now + timedelta(hours=3))
    snap = metrics.snapshot()
    hist = snap.histograms["auditor.poll_seconds{log=Obs Log}"]
    assert hist["count"] == 3
    assert hist["sum"] > 0
    assert snap.gauges["auditor.tree_size{log=Obs Log}"] == 7
    assert snap.counters["auditor.sths_verified{log=Obs Log}"] == 3
    assert snap.counters["auditor.consistency_ok{log=Obs Log}"] == 2
    assert "auditor.consistency_failed{log=Obs Log}" not in snap.counters
    polls = [e for e in events.tail(100) if e["kind"] == "auditor_poll"]
    assert [p["tree_size"] for p in polls] == [0, 5, 7]
    assert all(p["ok"] for p in polls)
    assert all(p["log"] == "Obs Log" for p in polls)


def test_split_view_bumps_consistency_failed(log, ca256, now):
    metrics = MetricsRegistry()
    events = EventLog()
    grow(ca256, log, 6, now)
    auditor = LogAuditor(log, metrics=metrics, events=events)
    auditor.poll(now + timedelta(minutes=30))
    # Swap the audited log for an equivocating twin mid-stream.
    auditor._log = make_split_view_log(log, fork_at=4)
    sth = auditor.poll(now + timedelta(hours=1))
    assert sth.tree_size == 5
    snap = metrics.snapshot()
    assert snap.counters["auditor.consistency_failed{log=Obs Log}"] == 1
    assert (
        snap.counters["auditor.findings{kind=inconsistent-history,log=Obs Log}"]
        == 1
    )
    findings = [e for e in events.tail(100) if e["kind"] == "audit_finding"]
    assert len(findings) == 1
    assert findings[0]["finding"] == "inconsistent-history"
    polls = [e for e in events.tail(100) if e["kind"] == "auditor_poll"]
    assert polls[-1]["ok"] is False


def test_shrinking_tree_counts_as_consistency_failure(log, ca256, now):
    from repro.ct.log import SignedTreeHead
    from repro.x509 import crypto

    metrics = MetricsRegistry()
    auditor = LogAuditor(log, metrics=metrics)
    grow(ca256, log, 4, now)
    auditor.observe_sth(log.get_sth(now), now)
    small_root = log.tree.root(2)
    payload = SignedTreeHead.signed_payload(2, 0, small_root)
    small = SignedTreeHead(2, 0, small_root, crypto.sign(log.key, payload))
    auditor.observe_sth(small, now + timedelta(hours=1))
    snap = metrics.snapshot()
    assert snap.counters["auditor.consistency_failed{log=Obs Log}"] == 1


def test_bad_signature_finding_counted(log, now):
    metrics = MetricsRegistry()
    auditor = LogAuditor(log, metrics=metrics)
    sth = log.get_sth(now)
    auditor.observe_sth(
        replace(sth, signature=b"\x00" * len(sth.signature)), now
    )
    snap = metrics.snapshot()
    assert (
        snap.counters["auditor.findings{kind=bad-sth-signature,log=Obs Log}"]
        == 1
    )
    assert "auditor.sths_verified{log=Obs Log}" not in snap.counters


def test_inclusion_audit_counters(log, ca256, now):
    metrics = MetricsRegistry()
    auditor = LogAuditor(log, metrics=metrics)
    pair = ca256.issue(IssuanceRequest(("inc.example",)), [log], now)
    ok = auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash, now
    )
    assert ok
    snap = metrics.snapshot()
    assert snap.counters["auditor.inclusion_ok{log=Obs Log}"] == 1
    assert "auditor.inclusion_failed{log=Obs Log}" not in snap.counters


def test_missing_entry_bumps_inclusion_failed(log, ca256, now):
    other = CTLog(name="Other", operator="T", key=log.key)
    metrics = MetricsRegistry()
    events = EventLog()
    auditor = LogAuditor(other, metrics=metrics, events=events)
    pair = ca256.issue(IssuanceRequest(("gone.example",)), [log], now)
    # SCT verifies (same key) but the entry is not in ``other``.
    ok = auditor.audit_sct_inclusion(
        pair.precertificate, pair.scts[0], ca256.issuer_key_hash, now
    )
    assert not ok
    snap = metrics.snapshot()
    assert snap.counters["auditor.inclusion_failed{log=Other}"] == 1
    findings = [e for e in events.tail(10) if e["kind"] == "audit_finding"]
    assert findings and findings[0]["finding"] == "missing-entry"


def test_auditor_without_observability_unchanged(log, ca256, now):
    auditor = LogAuditor(log)
    auditor.poll(now)
    grow(ca256, log, 3, now)
    auditor.poll(now + timedelta(hours=1))
    assert auditor.report.clean
    assert auditor.report.sths_verified == 2
