"""Tests for the CertStream-style feed hub."""

from datetime import timedelta

import pytest

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


@pytest.fixture()
def world():
    log_a = CTLog(name="Feed A", operator="T", key=log_key("Feed A", 256))
    log_b = CTLog(name="Feed B", operator="T", key=log_key("Feed B", 256))
    ca = CertificateAuthority("Feed CA", key_bits=256)
    return log_a, log_b, ca


def issue(ca, log, name, when=NOW):
    return ca.issue(IssuanceRequest((name,)), [log], when)


def test_new_entries_reach_subscribers(world):
    log_a, log_b, ca = world
    feed = CertFeed([log_a, log_b])
    seen = []
    feed.subscribe("s1", seen.append)
    issue(ca, log_a, "one.example")
    issue(ca, log_b, "two.example")
    delivered = feed.run_once(NOW + timedelta(seconds=30))
    assert delivered == 2
    assert sorted(n for e in seen for n in e.dns_names) == [
        "one.example", "two.example",
    ]
    assert {e.log_name for e in seen} == {"Feed A", "Feed B"}


def test_entries_before_feed_creation_not_streamed(world):
    log_a, _, ca = world
    issue(ca, log_a, "old.example")
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    feed.run_once(NOW)
    assert seen == []


def test_backfill_replays_history(world):
    log_a, _, ca = world
    issue(ca, log_a, "old.example")
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.backfill("s") == 1
    assert seen[0].dns_names == ["old.example"]


def test_no_duplicate_delivery(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "x.example")
    feed.run_once(NOW)
    feed.run_once(NOW + timedelta(minutes=1))
    assert len(seen) == 1


def test_multiple_subscribers_each_get_events(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    a, b = [], []
    feed.subscribe("a", a.append)
    feed.subscribe("b", b.append)
    issue(ca, log_a, "multi.example")
    feed.run_once(NOW)
    assert len(a) == len(b) == 1


def test_duplicate_subscriber_name_rejected(world):
    log_a, _, _ = world
    feed = CertFeed([log_a])
    feed.subscribe("s", lambda e: None)
    with pytest.raises(ValueError):
        feed.subscribe("s", lambda e: None)


def test_backpressure_drops_counted(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("slow", seen.append, max_queue=2)
    for i in range(5):
        issue(ca, log_a, f"bp{i}.example")
    feed.poll(NOW)
    delivered, queued, dropped = feed.stats("slow")
    assert queued == 2
    assert dropped == 3
    feed.dispatch()
    assert len(seen) == 2


def test_dispatch_budget(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    for i in range(4):
        issue(ca, log_a, f"q{i}.example")
    feed.poll(NOW)
    assert feed.dispatch(budget=3) == 3
    assert len(seen) == 3
    assert feed.dispatch() == 1


def test_unsubscribe(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    feed.unsubscribe("s")
    issue(ca, log_a, "bye.example")
    feed.run_once(NOW)
    assert seen == []
    assert feed.subscribers() == []


def test_event_metadata(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "meta.example")
    feed.run_once(NOW + timedelta(seconds=45))
    event = seen[0]
    assert event.issuer == "Feed CA"
    assert event.seen_at == NOW + timedelta(seconds=45)


def test_feed_with_no_logs():
    feed = CertFeed([])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.poll(NOW) == 0
    assert feed.dispatch() == 0
    assert feed.backfill("s") == 0
