"""Tests for the CertStream-style feed hub."""

from datetime import timedelta

import pytest

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.resilience import FlakyLog, RetryPolicy
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


@pytest.fixture()
def world():
    log_a = CTLog(name="Feed A", operator="T", key=log_key("Feed A", 256))
    log_b = CTLog(name="Feed B", operator="T", key=log_key("Feed B", 256))
    ca = CertificateAuthority("Feed CA", key_bits=256)
    return log_a, log_b, ca


def issue(ca, log, name, when=NOW):
    return ca.issue(IssuanceRequest((name,)), [log], when)


def test_new_entries_reach_subscribers(world):
    log_a, log_b, ca = world
    feed = CertFeed([log_a, log_b])
    seen = []
    feed.subscribe("s1", seen.append)
    issue(ca, log_a, "one.example")
    issue(ca, log_b, "two.example")
    delivered = feed.run_once(NOW + timedelta(seconds=30))
    assert delivered == 2
    assert sorted(n for e in seen for n in e.dns_names) == [
        "one.example", "two.example",
    ]
    assert {e.log_name for e in seen} == {"Feed A", "Feed B"}


def test_entries_before_feed_creation_not_streamed(world):
    log_a, _, ca = world
    issue(ca, log_a, "old.example")
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    feed.run_once(NOW)
    assert seen == []


def test_backfill_replays_history(world):
    log_a, _, ca = world
    issue(ca, log_a, "old.example")
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.backfill("s") == 1
    assert seen[0].dns_names == ["old.example"]


def test_no_duplicate_delivery(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "x.example")
    feed.run_once(NOW)
    feed.run_once(NOW + timedelta(minutes=1))
    assert len(seen) == 1


def test_multiple_subscribers_each_get_events(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    a, b = [], []
    feed.subscribe("a", a.append)
    feed.subscribe("b", b.append)
    issue(ca, log_a, "multi.example")
    feed.run_once(NOW)
    assert len(a) == len(b) == 1


def test_duplicate_subscriber_name_rejected(world):
    log_a, _, _ = world
    feed = CertFeed([log_a])
    feed.subscribe("s", lambda e: None)
    with pytest.raises(ValueError):
        feed.subscribe("s", lambda e: None)


def test_backpressure_drops_counted(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("slow", seen.append, max_queue=2)
    for i in range(5):
        issue(ca, log_a, f"bp{i}.example")
    feed.poll(NOW)
    delivered, queued, dropped = feed.stats("slow")
    assert queued == 2
    assert dropped == 3
    feed.dispatch()
    assert len(seen) == 2


def test_dispatch_budget(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    for i in range(4):
        issue(ca, log_a, f"q{i}.example")
    feed.poll(NOW)
    assert feed.dispatch(budget=3) == 3
    assert len(seen) == 3
    assert feed.dispatch() == 1


def test_unsubscribe(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    feed.unsubscribe("s")
    issue(ca, log_a, "bye.example")
    feed.run_once(NOW)
    assert seen == []
    assert feed.subscribers() == []


def test_event_metadata(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "meta.example")
    feed.run_once(NOW + timedelta(seconds=45))
    event = seen[0]
    assert event.issuer == "Feed CA"
    assert event.seen_at == NOW + timedelta(seconds=45)


def test_feed_with_no_logs():
    feed = CertFeed([])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.poll(NOW) == 0
    assert feed.dispatch() == 0
    assert feed.backfill("s") == 0


# -- backfill semantics (global limit, global order) -----------------------


def test_backfill_limit_caps_total_across_logs(world):
    log_a, log_b, ca = world
    issue(ca, log_a, "a0.example", NOW)
    issue(ca, log_b, "b0.example", NOW + timedelta(minutes=1))
    issue(ca, log_a, "a1.example", NOW + timedelta(minutes=2))
    issue(ca, log_b, "b1.example", NOW + timedelta(minutes=3))
    feed = CertFeed([log_a, log_b])
    seen = []
    feed.subscribe("s", seen.append)
    # limit is a cap on the *total* replay, not per log: the most
    # recent two submissions overall, still delivered oldest-first.
    assert feed.backfill("s", limit=2) == 2
    assert [e.dns_names[0] for e in seen] == ["a1.example", "b1.example"]


def test_backfill_replays_in_global_submission_order(world):
    log_a, log_b, ca = world
    issue(ca, log_b, "first.example", NOW)
    issue(ca, log_a, "second.example", NOW + timedelta(minutes=1))
    issue(ca, log_b, "third.example", NOW + timedelta(minutes=2))
    issue(ca, log_a, "fourth.example", NOW + timedelta(minutes=3))
    feed = CertFeed([log_a, log_b])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.backfill("s") == 4
    assert [e.dns_names[0] for e in seen] == [
        "first.example", "second.example", "third.example", "fourth.example",
    ]


def test_backfill_counts_and_seen_at(world):
    log_a, _, ca = world
    issue(ca, log_a, "hist.example", NOW)
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.backfill("s") == 1
    delivered, queued, dropped = feed.stats("s")
    assert (delivered, queued, dropped) == (1, 0, 0)
    assert seen[0].seen_at == log_a.entries[0].submitted_at


def test_backfill_zero_limit_delivers_nothing(world):
    log_a, _, ca = world
    issue(ca, log_a, "z.example")
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    assert feed.backfill("s", limit=0) == 0
    assert seen == []


def test_backfill_negative_limit_rejected(world):
    log_a, _, _ = world
    feed = CertFeed([log_a])
    feed.subscribe("s", lambda e: None)
    with pytest.raises(ValueError):
        feed.backfill("s", limit=-1)


def test_backfill_unknown_subscriber_is_a_clear_error(world):
    log_a, _, _ = world
    feed = CertFeed([log_a])
    with pytest.raises(ValueError, match="'ghost' is not registered"):
        feed.backfill("ghost")


def test_stats_unknown_subscriber_is_a_clear_error(world):
    log_a, _, _ = world
    feed = CertFeed([log_a])
    with pytest.raises(ValueError, match="'ghost' is not registered"):
        feed.stats("ghost")


# -- poll cursors under failure (no skips, no double delivery) -------------


def fail_first_fetch():
    """Predicate failing only the very first get_entries call."""
    calls = {"n": 0}

    def predicate(method, _args):
        if method != "get_entries":
            return False
        calls["n"] += 1
        return calls["n"] == 1

    return predicate


def test_failed_poll_does_not_advance_cursor(world):
    log_a, _, ca = world
    flaky = FlakyLog(
        log_a, SeededRng(1), failure_rate=0.0, fail_when=fail_first_fetch()
    )
    feed = CertFeed([flaky])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "p0.example")
    issue(ca, log_a, "p1.example")

    assert feed.run_once(NOW) == 0  # fetch failed; cursor must hold
    health = feed.log_health()["Feed A"]
    assert health["errors"] == 1
    assert health["cursor"] == 0

    issue(ca, log_a, "p2.example")
    assert feed.run_once(NOW + timedelta(minutes=1)) == 3
    assert [e.dns_names[0] for e in seen] == [
        "p0.example", "p1.example", "p2.example",
    ]
    assert feed.log_health()["Feed A"]["cursor"] == 3

    # A further idle poll neither re-delivers nor skips.
    assert feed.run_once(NOW + timedelta(minutes=2)) == 0
    assert len(seen) == 3


def test_poll_cursor_exact_across_many_polls(world):
    log_a, _, ca = world
    feed = CertFeed([log_a])
    seen = []
    feed.subscribe("s", seen.append)
    for i in range(5):
        issue(ca, log_a, f"seq{i}.example", NOW + timedelta(minutes=i))
        feed.run_once(NOW + timedelta(minutes=i, seconds=30))
    assert [e.dns_names[0] for e in seen] == [
        f"seq{i}.example" for i in range(5)
    ]


def test_poll_retry_policy_recovers_within_one_poll(world):
    log_a, _, ca = world
    flaky = FlakyLog(
        log_a,
        SeededRng(3),
        failure_rate=1.0,
        max_consecutive=1,
        methods=("get_entries",),
    )
    feed = CertFeed(
        [flaky], retry=RetryPolicy(max_attempts=2, base_delay_s=0.0)
    )
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "r0.example")
    issue(ca, log_a, "r1.example")
    assert feed.run_once(NOW) == 2
    health = feed.log_health()["Feed A"]
    assert health["errors"] == 0
    assert health["retries"] == 1
    assert health["cursor"] == 2


class ShortReadLog:
    """A log whose ``get_entries`` answers at most ``page`` entries.

    RFC 6962 explicitly allows short reads; the feed must advance its
    cursor by what actually arrived, never by what it asked for.
    """

    def __init__(self, log, page):
        self._log = log
        self._page = page
        self.requests = []

    @property
    def name(self):
        return self._log.name

    @property
    def size(self):
        return self._log.size

    def get_entries(self, start, end):
        self.requests.append((start, end))
        return self._log.get_entries(start, min(end, start + self._page - 1))


def test_short_reads_advance_cursor_only_by_delivered_entries(world):
    log_a, _, ca = world
    short = ShortReadLog(log_a, page=3)
    feed = CertFeed([short])
    seen = []
    feed.subscribe("s", seen.append)
    for i in range(7):
        issue(ca, log_a, f"sr{i}.example")

    # Each poll asks for everything but receives at most 3 entries.
    assert feed.run_once(NOW) == 3
    assert feed.log_health()["Feed A"]["cursor"] == 3
    assert short.requests[-1] == (0, 6)  # asked for all seven
    assert feed.run_once(NOW + timedelta(minutes=1)) == 3
    assert feed.log_health()["Feed A"]["cursor"] == 6
    assert short.requests[-1] == (3, 6)  # resumed where delivery ended
    assert feed.run_once(NOW + timedelta(minutes=2)) == 1
    assert feed.log_health()["Feed A"]["cursor"] == 7

    # No entry skipped, none duplicated, order preserved.
    assert [e.dns_names[0] for e in seen] == [
        f"sr{i}.example" for i in range(7)
    ]
    assert feed.run_once(NOW + timedelta(minutes=3)) == 0


def test_short_reads_interleaved_with_growth(world):
    log_a, _, ca = world
    short = ShortReadLog(log_a, page=2)
    feed = CertFeed([short])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "g0.example")
    issue(ca, log_a, "g1.example")
    issue(ca, log_a, "g2.example")
    assert feed.run_once(NOW) == 2  # short read: 2 of 3
    issue(ca, log_a, "g3.example")  # grows while one entry is pending
    assert feed.run_once(NOW + timedelta(minutes=1)) == 2
    assert [e.dns_names[0] for e in seen] == [
        "g0.example", "g1.example", "g2.example", "g3.example",
    ]
    assert feed.log_health()["Feed A"]["cursor"] == 4


def test_one_failing_log_does_not_block_the_other(world):
    log_a, log_b, ca = world
    broken = FlakyLog(
        log_a, SeededRng(2), failure_rate=0.0,
        fail_when=lambda method, args: method == "get_entries",
    )
    feed = CertFeed([broken, log_b])
    seen = []
    feed.subscribe("s", seen.append)
    issue(ca, log_a, "stuck.example")
    issue(ca, log_b, "fine.example")
    assert feed.run_once(NOW) == 1
    assert seen[0].dns_names == ["fine.example"]
    health = feed.log_health()
    assert health["Feed A"]["errors"] == 1
    assert health["Feed B"]["cursor"] == 1
