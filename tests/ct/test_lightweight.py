"""Verifiable light-weight monitoring (Dahlberg & Pulls).

A :class:`~repro.ct.monitor.LightweightMonitor` subscribes to a domain
set and per poll verifies the STH, walks signed batch digests, and
fetches *only* matching entry bodies plus their inclusion proofs.  The
suites here pin the two halves of that claim: nothing subscribed is
ever missed, and nothing unsubscribed is ever downloaded.
"""

from dataclasses import replace
from datetime import timedelta

import pytest

from repro.ct.auditor import make_split_view_log
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import (
    HttpTransport,
    InMemoryTransport,
    LightweightMonitor,
    domain_matches,
)
from repro.ct.sequencer import LogSequencer
from repro.ct.server import LogServer
from repro.obs import EventLog, MetricsRegistry, replay_counters
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log(now):
    log = CTLog(name="LW Log", operator="T", key=log_key("LW Log", 256))
    ca = CertificateAuthority("LW CA", key_bits=256)
    # Two subscribed entries among ten.
    for i in range(10):
        name = (
            f"shop{i}.watched.example" if i in (3, 7)
            else f"other{i}.example"
        )
        ca.issue(
            IssuanceRequest((name,)), [log], now + timedelta(minutes=i)
        )
    return log


def grow(log, names, start):
    ca = CertificateAuthority("LW Late CA", key_bits=256)
    for i, name in enumerate(names):
        ca.issue(
            IssuanceRequest((name,)), [log], start + timedelta(minutes=i)
        )


def _precerts(count, tag, now):
    ca = CertificateAuthority(f"LW Submit CA {tag}", key_bits=256)
    scratch = CTLog(
        name=f"lw-scratch-{tag}",
        operator="T",
        key=log_key(f"lw-scratch-{tag}", 256),
    )
    pairs = [
        ca.issue(IssuanceRequest((f"s{i}.{tag}",)), [scratch], now)
        for i in range(count)
    ]
    return [pair.precertificate for pair in pairs], ca.issuer_key_hash


def test_domain_matches():
    assert domain_matches("watched.example", "watched.example")
    assert domain_matches("watched.example", "shop.watched.example")
    assert domain_matches("watched.example", "a.b.watched.example")
    assert domain_matches("Watched.Example", "SHOP.WATCHED.EXAMPLE")
    assert not domain_matches("watched.example", "notwatched.example")
    assert not domain_matches("watched.example", "watched.example.evil")
    assert domain_matches("*.watched.example", "shop.watched.example")


def test_subscription_normalizes_domains():
    monitor = LightweightMonitor("m", ["*.Watched.Example.", "B.example"])
    assert monitor.domains == ("b.example", "watched.example")


def test_fetches_only_matching_entries(log, now):
    monitor = LightweightMonitor(
        "m", ["watched.example"], key=log.key
    )
    transport = InMemoryTransport(log)
    observations = monitor.poll(transport, now + timedelta(hours=1))
    assert [obs.entry.index for obs in observations] == [3, 7]
    assert monitor.clean
    # Exactly the two matching bodies crossed the transport — the
    # eight non-matching entries were never downloaded.
    assert transport.entries_fetched == 2
    assert monitor.wire_entries[log.name] == 2
    assert monitor.sths_verified == 1
    assert monitor.digests_verified == 1
    assert monitor.proofs_verified == 2
    assert monitor.entries_matched == 2


def test_incremental_polls_track_growth(log, now):
    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    transport = InMemoryTransport(log)
    assert len(monitor.poll(transport, now + timedelta(hours=1))) == 2
    # Nothing new: no entry bodies move.
    assert monitor.poll(transport, now + timedelta(hours=2)) == []
    assert transport.entries_fetched == 2
    grow(
        log,
        ["late.watched.example", "late.other.example"],
        now + timedelta(hours=3),
    )
    fresh = monitor.poll(transport, now + timedelta(hours=4))
    assert [obs.entry.index for obs in fresh] == [10]
    assert fresh[0].dns_names == ["late.watched.example"]
    assert transport.entries_fetched == 3
    assert monitor.clean


def test_wrong_key_flags_sth_signature(log, now):
    monitor = LightweightMonitor(
        "m", ["watched.example"], key=log_key("Some Other Log", 256)
    )
    assert monitor.poll(log, now) == []
    assert [f.kind for f in monitor.findings] == ["bad-sth-signature"]
    assert not monitor.clean


def test_tampered_digest_flagged_and_cursor_held(log, now):
    class TamperingTransport(InMemoryTransport):
        def get_batch_digest(self, start):
            digest = super().get_batch_digest(start)
            return replace(
                digest, signature=b"\x00" * len(digest.signature)
            )

    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    transport = TamperingTransport(log)
    assert monitor.poll(transport, now) == []
    assert [f.kind for f in monitor.findings] == ["bad-sth-signature"]
    # The tampered digest was rejected before any body was fetched,
    # and the cursor did not move past the unverified range.
    assert transport.entries_fetched == 0
    honest = LightweightMonitor("m2", ["watched.example"], key=log.key)
    assert len(honest.poll(InMemoryTransport(log), now)) == 2


def test_split_view_yields_inconsistent_history(log, now):
    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    assert len(monitor.poll(log, now + timedelta(hours=1))) == 2
    # The log operator swaps this client onto an equivocating twin of
    # the same size: the two-roots-one-size check fires.
    twin = make_split_view_log(log, fork_at=5, pad_to=log.size)
    assert monitor.poll(twin, now + timedelta(hours=2)) == []
    assert [f.kind for f in monitor.findings] == ["inconsistent-history"]
    assert "two roots" in monitor.findings[0].detail


def test_fetch_error_finding_when_log_unreachable(log):
    with LogServer(log) as server:
        url = server.log_url(log.name)
    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    transport = HttpTransport(url, log.name, timeout=0.5)
    assert monitor.poll(transport) == []
    assert [f.kind for f in monitor.findings] == ["fetch-error"]


def test_http_end_to_end_with_batched_digests(log, now):
    sequencer = LogSequencer(log, max_batch=64)
    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    with LogServer(sequencer) as server:
        transport = HttpTransport(server.log_url(log.name), log.name)
        first = monitor.poll(transport, now + timedelta(hours=1))
        assert [obs.entry.index for obs in first] == [3, 7]

        # Two more merge batches land, one matching entry in each.
        precerts, issuer_key_hash = _precerts(3, "watched.example", now)
        sequencer.submit_pre_chain(precerts[0], issuer_key_hash)
        other, other_hash = _precerts(2, "elsewhere.example", now)
        sequencer.submit_pre_chain(other[0], other_hash)
        sequencer.merge(now + timedelta(hours=2))
        sequencer.submit_pre_chain(precerts[1], issuer_key_hash)
        sequencer.merge(now + timedelta(hours=3))

        fresh = monitor.poll(transport, now + timedelta(hours=4))
        assert len(fresh) == 2
        assert all(
            "watched.example" in name
            for obs in fresh
            for name in obs.dns_names
        )
        stats = transport.stats()
    assert monitor.clean
    # 2 + 2 matching bodies over a 14-entry tree; batch digests walked
    # across two merge boundaries without fetching the rest.
    assert stats["entries"] == 4
    assert monitor.digests_verified >= 3
    assert stats["bytes"] > 0
    assert monitor.wire_stats()["bytes"] == stats["bytes"]


def test_obs_wiring_and_replay_parity(log, now):
    metrics = MetricsRegistry()
    events = EventLog()
    monitor = LightweightMonitor(
        "m", ["watched.example"], key=log.key,
        metrics=metrics, events=events,
    )
    monitor.poll(log, now + timedelta(hours=1))
    grow(log, ["x.watched.example"], now + timedelta(hours=2))
    monitor.poll(log, now + timedelta(hours=3))
    records = events.tail(1_000)
    polls = [r for r in records if r["kind"] == "lightweight_poll"]
    assert len(polls) == 2
    assert all(p["ok"] for p in polls)
    # The monitor.* counter family replays exactly from the event log.
    snapshot = metrics.snapshot()
    live = {
        key: value for key, value in snapshot.counters.items()
        if key.startswith("monitor.")
    }
    replayed = {
        key: value
        for key, value in replay_counters(records).items()
        if key.startswith("monitor.")
    }
    assert live == replayed
    assert sum(v for k, v in live.items() if k.startswith("monitor.matches")) == 3


def test_observe_alias_for_watch_logs(log, now):
    from repro.ct.monitor import watch_logs

    monitor = LightweightMonitor("m", ["watched.example"], key=log.key)
    observations = watch_logs([monitor], [log])
    assert [obs.entry.index for obs in observations] == [3, 7]
    assert observations[0].monitor == "m"
