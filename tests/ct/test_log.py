"""Tests for the CT log server."""

import pytest

from repro.ct.log import CTLog, LogDisqualifiedError, LogOverloadedError
from repro.ct.loglist import log_key
from repro.ct.merkle import verify_consistency_proof, verify_inclusion_proof
from repro.ct.sct import SctEntryType
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log():
    return CTLog(name="Test Log", operator="Testers", key=log_key("Test Log", 256))


@pytest.fixture()
def ca256():
    return CertificateAuthority("Log Test CA", key_bits=256)


def issue_into(ca, log, name, when):
    return ca.issue(IssuanceRequest((name,)), [log], when)


def test_add_pre_chain_appends_entry(log, ca256, now):
    issue_into(ca256, log, "a.example", now)
    assert log.size == 1
    assert log.entries[0].entry_type is SctEntryType.PRECERT_ENTRY


def test_add_pre_chain_rejects_final_cert(log, ca256, now):
    pair = ca256.issue(IssuanceRequest(("x.example",), embed_scts=False), [], now)
    with pytest.raises(ValueError):
        log.add_pre_chain(pair.final_certificate, ca256.issuer_key_hash, now)


def test_add_chain_rejects_precert(log, ca256, now):
    pair = issue_into(ca256, log, "y.example", now)
    with pytest.raises(ValueError):
        log.add_chain(pair.precertificate, now)


def test_sct_verifies_against_log_key(log, ca256, now):
    pair = issue_into(ca256, log, "v.example", now)
    sct = pair.scts[0]
    assert sct.log_id == log.log_id
    entry = log.entries[-1]
    assert sct.verify(log.key, entry.leaf_input)


def test_duplicate_submission_returns_same_sct(log, ca256, now):
    pair = issue_into(ca256, log, "dup.example", now)
    again = log.add_pre_chain(pair.precertificate, ca256.issuer_key_hash, now)
    assert again == pair.scts[0]
    assert log.size == 1  # deduplicated


def test_sth_signs_current_tree(log, ca256, now):
    issue_into(ca256, log, "s1.example", now)
    issue_into(ca256, log, "s2.example", now)
    sth = log.get_sth(now)
    assert sth.tree_size == 2
    assert sth.verify(log.key)
    assert sth.root_hash == log.tree.root()


def test_sth_signature_rejects_other_key(log, ca256, now):
    issue_into(ca256, log, "s.example", now)
    sth = log.get_sth(now)
    assert not sth.verify(log_key("Another Log", 256))


def test_get_entries_range(log, ca256, now):
    for i in range(5):
        issue_into(ca256, log, f"e{i}.example", now)
    entries = log.get_entries(1, 3)
    assert [e.index for e in entries] == [1, 2, 3]


def test_get_entries_invalid_range(log):
    with pytest.raises(ValueError):
        log.get_entries(-1, 2)
    with pytest.raises(ValueError):
        log.get_entries(3, 2)


def test_inclusion_proof_through_log_api(log, ca256, now):
    for i in range(9):
        issue_into(ca256, log, f"p{i}.example", now)
    sth = log.get_sth(now)
    entry = log.entries[4]
    proof = log.get_proof_by_hash(entry.index, sth.tree_size)
    assert verify_inclusion_proof(
        entry.leaf_input, entry.index, sth.tree_size, proof, sth.root_hash
    )


def test_consistency_through_log_api(log, ca256, now):
    for i in range(4):
        issue_into(ca256, log, f"c{i}.example", now)
    old = log.get_sth(now)
    for i in range(4, 11):
        issue_into(ca256, log, f"c{i}.example", now)
    new = log.get_sth(now)
    proof = log.get_consistency(old.tree_size, new.tree_size)
    assert verify_consistency_proof(
        old.tree_size, new.tree_size, old.root_hash, new.root_hash, proof
    )


def test_capacity_tracking_records_overload(ca256, now):
    log = CTLog(
        name="Tiny Log", operator="T", key=log_key("Tiny Log", 256),
        capacity_per_day=2,
    )
    for i in range(4):
        issue_into(ca256, log, f"o{i}.example", now)
    assert log.was_overloaded()
    assert log.overload_days[now.date()] == 2
    # Non-strict mode still accepts.
    assert log.size == 4


def test_strict_capacity_rejects(ca256, now):
    log = CTLog(
        name="Strict Log", operator="T", key=log_key("Strict Log", 256),
        capacity_per_day=1, strict_capacity=True,
    )
    issue_into(ca256, log, "ok.example", now)
    with pytest.raises(LogOverloadedError):
        issue_into(ca256, log, "over.example", now)


def test_strict_rejections_do_not_consume_quota(ca256, now):
    """A 429'd submission must not count against the daily quota.

    Before the fix, ``_accept`` bumped ``_daily_counts`` *before* the
    strict-capacity raise, so every rejected retry inflated the count
    past the ceiling even though nothing was appended.
    """
    log = CTLog(
        name="Quota Log", operator="T", key=log_key("Quota Log", 256),
        capacity_per_day=2, strict_capacity=True,
    )
    scratch = CTLog(
        name="Quota Scratch", operator="T", key=log_key("Quota Scratch", 256)
    )
    accepted = [issue_into(ca256, log, f"q{i}.example", now) for i in range(2)]
    assert log.size == 2

    # Five distinct over-capacity submissions: each raises, none counts.
    for i in range(5):
        pair = issue_into(ca256, scratch, f"over{i}.example", now)
        with pytest.raises(LogOverloadedError):
            log.add_pre_chain(pair.precertificate, ca256.issuer_key_hash, now)

    assert log.daily_submission_counts()[now.date()] == 2
    assert log.overload_days[now.date()] == 5  # overloads still observed
    assert log.size == 2

    # A retried rejection also never double-counts the quota.
    retry = issue_into(ca256, scratch, "retry.example", now)
    for _ in range(3):
        with pytest.raises(LogOverloadedError):
            log.add_pre_chain(retry.precertificate, ca256.issuer_key_hash, now)
    assert log.daily_submission_counts()[now.date()] == 2

    # Dedup runs before the capacity gate: a resubmission of an
    # *accepted* entry still returns its cached SCT at full capacity.
    again = log.add_pre_chain(
        accepted[0].precertificate, ca256.issuer_key_hash, now
    )
    assert again == accepted[0].scts[0]
    assert log.daily_submission_counts()[now.date()] == 2


def test_non_strict_overload_still_counts_admissions(ca256, now):
    """Without strict_capacity every submission is accepted and counted."""
    log = CTLog(
        name="Soft Log", operator="T", key=log_key("Soft Log", 256),
        capacity_per_day=2,
    )
    for i in range(5):
        issue_into(ca256, log, f"s{i}.example", now)
    assert log.size == 5
    assert log.daily_submission_counts()[now.date()] == 5
    assert log.overload_days[now.date()] == 3


def test_capacity_resets_across_days(ca256, now):
    log = CTLog(
        name="Daily Log", operator="T", key=log_key("Daily Log", 256),
        capacity_per_day=1,
    )
    issue_into(ca256, log, "d1.example", now)
    next_day = utc_datetime(2018, 4, 19, 12, 0)
    issue_into(ca256, log, "d2.example", next_day)
    assert not log.was_overloaded()


def test_disqualified_log_rejects(log, ca256, now):
    log.disqualify()
    with pytest.raises(LogDisqualifiedError):
        issue_into(ca256, log, "dq.example", now)


def test_utilization_series(ca256, now):
    log = CTLog(
        name="Util Log", operator="T", key=log_key("Util Log", 256),
        capacity_per_day=4,
    )
    for i in range(2):
        issue_into(ca256, log, f"u{i}.example", now)
    series = log.utilization()
    assert series == [(now.date(), 0.5)]


def test_utilization_empty_when_uncapped(log):
    assert log.utilization() == []
