"""Tests for the log registry."""

from datetime import date

from repro.ct.loglist import (
    KNOWN_LOGS,
    TABLE1_LOG_NAMES,
    build_default_logs,
    log_key,
    logs_by_operator,
)


def test_table1_logs_present():
    names = {info.name for info in KNOWN_LOGS}
    for expected in (
        "Google Pilot log",
        "Symantec log",
        "Google Rocketeer log",
        "DigiCert Log Server",
        "Cloudflare Nimbus2018 Log",
        "Certly.IO log",
    ):
        assert expected in names


def test_table1_order_matches_paper_head():
    assert TABLE1_LOG_NAMES[0] == "Google Pilot log"
    assert len(TABLE1_LOG_NAMES) == 15


def test_deneb_never_chrome_trusted():
    deneb = next(info for info in KNOWN_LOGS if "Deneb" in info.name)
    assert deneb.chrome_inclusion is None


def test_build_default_logs_keys_are_distinct():
    logs = build_default_logs(key_bits=256)
    ids = [log.log_id for log in logs.values()]
    assert len(set(ids)) == len(ids)


def test_log_key_deterministic():
    assert log_key("Some Log", 256).key_id == log_key("Some Log", 256).key_id


def test_build_without_capacities():
    logs = build_default_logs(with_capacities=False, key_bits=256)
    assert all(log.capacity_per_day is None for log in logs.values())


def test_build_with_capacities_caps_nimbus():
    logs = build_default_logs(with_capacities=True, key_bits=256)
    assert logs["Cloudflare Nimbus2018 Log"].capacity_per_day is not None


def test_logs_by_operator_groups():
    logs = build_default_logs(key_bits=256)
    grouped = logs_by_operator(logs)
    assert len(grouped["Google"]) >= 5
    assert len(grouped["Cloudflare"]) >= 3
    assert {log.operator for log in grouped["Symantec"]} == {"Symantec"}


def test_chrome_inclusion_dates_match_table1_annotations():
    logs = {info.name: info for info in KNOWN_LOGS}
    assert logs["Google Pilot log"].chrome_inclusion == date(2014, 6, 1)
    assert logs["DigiCert Log Server 2"].chrome_inclusion == date(2017, 6, 1)
    assert logs["Cloudflare Nimbus2018 Log"].chrome_inclusion == date(2018, 3, 1)
