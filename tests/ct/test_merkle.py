"""Tests for the RFC 6962 Merkle tree."""

import hashlib

import pytest

from repro.ct.merkle import (
    EMPTY_TREE_HASH,
    MerkleTree,
    leaf_hash,
    node_hash,
    verify_consistency_proof,
    verify_inclusion_proof,
)


def build_tree(n):
    tree = MerkleTree()
    leaves = [f"leaf-{i}".encode() for i in range(n)]
    for leaf in leaves:
        tree.append(leaf)
    return tree, leaves


def test_empty_tree_root_is_sha256_of_empty():
    assert MerkleTree().root() == hashlib.sha256(b"").digest()
    assert MerkleTree().root() == EMPTY_TREE_HASH


def test_single_leaf_root_is_leaf_hash():
    tree = MerkleTree()
    tree.append(b"only")
    assert tree.root() == leaf_hash(b"only")


def test_two_leaf_root():
    tree = MerkleTree()
    tree.append(b"a")
    tree.append(b"b")
    assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))


def test_three_leaf_root_unbalanced_split():
    # RFC 6962: left subtree takes the largest power of two < n (2).
    tree, _ = build_tree(3)
    left = node_hash(leaf_hash(b"leaf-0"), leaf_hash(b"leaf-1"))
    assert tree.root() == node_hash(left, leaf_hash(b"leaf-2"))


def test_leaf_and_node_prefixes_differ():
    # Second-preimage resistance: leaf and node hashing are domain-separated.
    data = b"x" * 64
    assert leaf_hash(data) != node_hash(data[:32], data[32:])


def test_root_of_prefix_matches_smaller_tree():
    big, _ = build_tree(13)
    small, _ = build_tree(7)
    assert big.root(7) == small.root()


def test_root_raises_beyond_size():
    tree, _ = build_tree(3)
    with pytest.raises(ValueError):
        tree.root(4)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33, 64, 100])
def test_inclusion_proofs_verify_for_all_leaves(n):
    tree, leaves = build_tree(n)
    root = tree.root()
    for index, leaf in enumerate(leaves):
        proof = tree.inclusion_proof(index)
        assert verify_inclusion_proof(leaf, index, n, proof, root), (n, index)


def test_inclusion_proof_fails_for_wrong_leaf():
    tree, leaves = build_tree(8)
    proof = tree.inclusion_proof(3)
    assert not verify_inclusion_proof(b"not-the-leaf", 3, 8, proof, tree.root())


def test_inclusion_proof_fails_for_wrong_index():
    tree, leaves = build_tree(8)
    proof = tree.inclusion_proof(3)
    assert not verify_inclusion_proof(leaves[3], 4, 8, proof, tree.root())


def test_inclusion_proof_fails_with_truncated_proof():
    tree, leaves = build_tree(8)
    proof = tree.inclusion_proof(3)[:-1]
    assert not verify_inclusion_proof(leaves[3], 3, 8, proof, tree.root())


def test_inclusion_proof_out_of_range_raises():
    tree, _ = build_tree(4)
    with pytest.raises(IndexError):
        tree.inclusion_proof(4)
    with pytest.raises(IndexError):
        tree.inclusion_proof(2, 8)


def test_inclusion_verify_rejects_empty_tree():
    assert not verify_inclusion_proof(b"x", 0, 0, [], EMPTY_TREE_HASH)


@pytest.mark.parametrize("old,new", [(1, 2), (2, 3), (3, 7), (4, 8), (7, 13), (8, 8), (0, 5), (6, 8), (1, 64)])
def test_consistency_proofs_verify(old, new):
    tree, _ = build_tree(new)
    proof = tree.consistency_proof(old, new)
    assert verify_consistency_proof(old, new, tree.root(old), tree.root(new), proof)


def test_consistency_proof_rejects_tampered_history():
    tree_a, _ = build_tree(8)
    # A different tree of size 4 is not a prefix of tree_a.
    other = MerkleTree()
    for i in range(4):
        other.append(f"other-{i}".encode())
    proof = tree_a.consistency_proof(4, 8)
    assert not verify_consistency_proof(4, 8, other.root(), tree_a.root(), proof)


def test_consistency_equal_sizes_needs_equal_roots():
    tree, _ = build_tree(5)
    assert verify_consistency_proof(5, 5, tree.root(), tree.root(), [])
    assert not verify_consistency_proof(5, 5, tree.root(), EMPTY_TREE_HASH, [])


def test_consistency_old_bigger_than_new_rejected():
    tree, _ = build_tree(4)
    assert not verify_consistency_proof(5, 4, tree.root(), tree.root(), [])


def test_consistency_invalid_sizes_raise():
    tree, _ = build_tree(4)
    with pytest.raises(ValueError):
        tree.consistency_proof(5, 4)


def test_append_returns_indices():
    tree = MerkleTree()
    assert tree.append(b"a") == 0
    assert tree.append(b"b") == 1
    assert len(tree) == 2


def test_append_leaf_hash_replicates_tree():
    original, leaves = build_tree(6)
    replica = MerkleTree()
    for leaf in leaves:
        replica.append_leaf_hash(leaf_hash(leaf))
    assert replica.root() == original.root()


def test_proofs_stable_while_tree_grows():
    tree, leaves = build_tree(5)
    root5 = tree.root(5)
    proof = tree.inclusion_proof(2, 5)
    for i in range(5, 40):
        tree.append(f"leaf-{i}".encode())
    # The old proof still verifies against the old tree head.
    assert verify_inclusion_proof(leaves[2], 2, 5, proof, root5)
    # And a fresh proof verifies against the new head.
    new_proof = tree.inclusion_proof(2, tree.size)
    assert verify_inclusion_proof(leaves[2], 2, tree.size, new_proof, tree.root())
