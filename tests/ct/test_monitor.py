"""Tests for streaming and batch log monitors."""

from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import BatchMonitor, StreamingMonitor, watch_logs
from repro.util.rng import SeededRng
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log_with_entries(now):
    log = CTLog(name="Mon Log", operator="T", key=log_key("Mon Log", 256))
    ca = CertificateAuthority("Mon CA", key_bits=256)
    for i in range(5):
        ca.issue(
            IssuanceRequest((f"mon{i}.example",)), [log],
            now + timedelta(minutes=i),
        )
    return log


def test_streaming_latency_within_range(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(1), latency_range_s=(60, 180))
    observations = monitor.observe(log_with_entries)
    assert len(observations) == 5
    for obs in observations:
        assert 60 <= obs.latency_seconds <= 180


def test_streaming_cursor_advances(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(1))
    assert len(monitor.observe(log_with_entries)) == 5
    assert monitor.observe(log_with_entries) == []


def test_streaming_sees_only_new_entries(log_with_entries, now):
    monitor = StreamingMonitor("s", SeededRng(1))
    monitor.observe(log_with_entries)
    ca = CertificateAuthority("Late CA", key_bits=256)
    ca.issue(IssuanceRequest(("late.example",)), [log_with_entries],
             now + timedelta(hours=1))
    fresh = monitor.observe(log_with_entries)
    assert len(fresh) == 1
    assert "late.example" in fresh[0].dns_names


def test_streaming_base_offset(log_with_entries):
    slow = StreamingMonitor("slow", SeededRng(1), latency_range_s=(10, 20),
                            base_offset_s=1_000)
    for obs in slow.observe(log_with_entries):
        assert obs.latency_seconds >= 1_000


def test_batch_observes_at_next_poll_tick(log_with_entries):
    monitor = BatchMonitor("b", SeededRng(2), interval=timedelta(hours=2))
    observations = monitor.observe(log_with_entries)
    assert len(observations) == 5
    for obs in observations:
        assert obs.latency_seconds <= 2 * 3600 + monitor.processing_delay_s
        assert obs.latency_seconds > 0


def test_batch_next_poll_is_after_moment(now):
    monitor = BatchMonitor("b", SeededRng(3), interval=timedelta(hours=1))
    tick = monitor.next_poll_after(now)
    assert tick > now
    assert (tick - now) <= timedelta(hours=1)


def test_batch_polls_are_periodic(now):
    monitor = BatchMonitor("b", SeededRng(4), interval=timedelta(hours=2))
    first = monitor.next_poll_after(now)
    second = monitor.next_poll_after(first)
    # Microsecond truncation in timedelta may wobble the tick by <1 ms.
    assert abs((second - first) - timedelta(hours=2)) < timedelta(milliseconds=1)


def test_observation_exposes_dns_names(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(5))
    obs = monitor.observe(log_with_entries)[0]
    assert obs.dns_names == ["mon0.example"]
    assert obs.log_name == "Mon Log"


def test_watch_logs_sorts_by_time(log_with_entries):
    fast = StreamingMonitor("fast", SeededRng(6), latency_range_s=(1, 2))
    slow = StreamingMonitor("slow", SeededRng(7), latency_range_s=(500, 600))
    observations = watch_logs([fast, slow], [log_with_entries])
    times = [obs.observed_at for obs in observations]
    assert times == sorted(times)
    assert len(observations) == 10
