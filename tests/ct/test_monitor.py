"""Tests for streaming and batch log monitors."""

from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import BatchMonitor, StreamingMonitor, watch_logs
from repro.resilience import FlakyLog, RetryPolicy
from repro.util.rng import SeededRng
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log_with_entries(now):
    log = CTLog(name="Mon Log", operator="T", key=log_key("Mon Log", 256))
    ca = CertificateAuthority("Mon CA", key_bits=256)
    for i in range(5):
        ca.issue(
            IssuanceRequest((f"mon{i}.example",)), [log],
            now + timedelta(minutes=i),
        )
    return log


def test_streaming_latency_within_range(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(1), latency_range_s=(60, 180))
    observations = monitor.observe(log_with_entries)
    assert len(observations) == 5
    for obs in observations:
        assert 60 <= obs.latency_seconds <= 180


def test_streaming_cursor_advances(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(1))
    assert len(monitor.observe(log_with_entries)) == 5
    assert monitor.observe(log_with_entries) == []


def test_streaming_sees_only_new_entries(log_with_entries, now):
    monitor = StreamingMonitor("s", SeededRng(1))
    monitor.observe(log_with_entries)
    ca = CertificateAuthority("Late CA", key_bits=256)
    ca.issue(IssuanceRequest(("late.example",)), [log_with_entries],
             now + timedelta(hours=1))
    fresh = monitor.observe(log_with_entries)
    assert len(fresh) == 1
    assert "late.example" in fresh[0].dns_names


def test_streaming_base_offset(log_with_entries):
    slow = StreamingMonitor("slow", SeededRng(1), latency_range_s=(10, 20),
                            base_offset_s=1_000)
    for obs in slow.observe(log_with_entries):
        assert obs.latency_seconds >= 1_000


def test_batch_observes_at_next_poll_tick(log_with_entries):
    monitor = BatchMonitor("b", SeededRng(2), interval=timedelta(hours=2))
    observations = monitor.observe(log_with_entries)
    assert len(observations) == 5
    for obs in observations:
        assert obs.latency_seconds <= 2 * 3600 + monitor.processing_delay_s
        assert obs.latency_seconds > 0


def test_batch_next_poll_is_after_moment(now):
    monitor = BatchMonitor("b", SeededRng(3), interval=timedelta(hours=1))
    tick = monitor.next_poll_after(now)
    assert tick > now
    assert (tick - now) <= timedelta(hours=1)


def test_batch_polls_are_periodic(now):
    monitor = BatchMonitor("b", SeededRng(4), interval=timedelta(hours=2))
    first = monitor.next_poll_after(now)
    second = monitor.next_poll_after(first)
    # Microsecond truncation in timedelta may wobble the tick by <1 ms.
    assert abs((second - first) - timedelta(hours=2)) < timedelta(milliseconds=1)


def test_observation_exposes_dns_names(log_with_entries):
    monitor = StreamingMonitor("s", SeededRng(5))
    obs = monitor.observe(log_with_entries)[0]
    assert obs.dns_names == ["mon0.example"]
    assert obs.log_name == "Mon Log"


def test_watch_logs_sorts_by_time(log_with_entries):
    fast = StreamingMonitor("fast", SeededRng(6), latency_range_s=(1, 2))
    slow = StreamingMonitor("slow", SeededRng(7), latency_range_s=(500, 600))
    observations = watch_logs([fast, slow], [log_with_entries])
    times = [obs.observed_at for obs in observations]
    assert times == sorted(times)
    assert len(observations) == 10


# -- cursor regressions under injected failures ----------------------------


def fail_first_fetch():
    calls = {"n": 0}

    def predicate(method, _args):
        if method != "get_entries":
            return False
        calls["n"] += 1
        return calls["n"] == 1

    return predicate


def test_failed_fetch_does_not_advance_cursor(log_with_entries, now):
    flaky = FlakyLog(
        log_with_entries,
        SeededRng(8),
        failure_rate=0.0,
        fail_when=fail_first_fetch(),
    )
    monitor = StreamingMonitor("s", SeededRng(8))
    assert monitor.observe(flaky) == []  # fetch failed, cursor holds
    assert monitor.errors["Mon Log"] == 1
    assert monitor._cursors.get("Mon Log", 0) == 0

    # Every entry — including one issued after the failure — arrives
    # exactly once on the next observation.
    ca = CertificateAuthority("Late CA", key_bits=256)
    ca.issue(
        IssuanceRequest(("late.example",)), [log_with_entries],
        now + timedelta(hours=1),
    )
    fresh = monitor.observe(flaky)
    assert [obs.dns_names[0] for obs in fresh] == [
        "mon0.example", "mon1.example", "mon2.example",
        "mon3.example", "mon4.example", "late.example",
    ]
    assert monitor.observe(flaky) == []  # and never twice


def test_monitor_retry_policy_recovers(log_with_entries):
    flaky = FlakyLog(
        log_with_entries,
        SeededRng(9),
        failure_rate=1.0,
        max_consecutive=1,
        methods=("get_entries",),
    )
    monitor = StreamingMonitor(
        "s", SeededRng(9),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
    )
    assert len(monitor.observe(flaky)) == 5
    assert monitor.errors.get("Mon Log", 0) == 0
    assert monitor.retries["Mon Log"] == 1


def test_batch_monitor_counts_errors_too(log_with_entries):
    broken = FlakyLog(
        log_with_entries,
        SeededRng(10),
        failure_rate=0.0,
        fail_when=lambda method, args: method == "get_entries",
    )
    monitor = BatchMonitor("b", SeededRng(10), interval=timedelta(hours=2))
    assert monitor.observe(broken) == []
    assert monitor.observe(broken) == []
    assert monitor.errors["Mon Log"] == 2


def test_cursor_exact_across_incremental_growth(log_with_entries, now):
    monitor = StreamingMonitor("s", SeededRng(11))
    seen = list(monitor.observe(log_with_entries))
    ca = CertificateAuthority("Inc CA", key_bits=256)
    for i in range(3):
        ca.issue(
            IssuanceRequest((f"inc{i}.example",)), [log_with_entries],
            now + timedelta(hours=2 + i),
        )
        seen.extend(monitor.observe(log_with_entries))
    names = [obs.dns_names[0] for obs in seen]
    assert names == [f"mon{i}.example" for i in range(5)] + [
        f"inc{i}.example" for i in range(3)
    ]
