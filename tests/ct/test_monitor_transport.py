"""Monitors over transports: in-memory parity, HTTP, wire accounting.

The transport refactor's contract: every pre-existing monitor behaves
bit-identically when polling a bare log versus an
:class:`~repro.ct.monitor.InMemoryTransport`, and the same monitor
code runs unchanged against a live :class:`~repro.ct.server.LogServer`
through :class:`~repro.ct.monitor.HttpTransport` — with the wire
ledger recording what that costs.
"""

from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import (
    BatchMonitor,
    HttpTransport,
    InMemoryTransport,
    LogTransport,
    StreamingMonitor,
    as_transport,
    watch_logs,
)
from repro.ct.server import LogClientError, LogServer
from repro.resilience import FlakyLog, RetryPolicy
from repro.util.rng import SeededRng
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def log_with_entries(now):
    log = CTLog(name="Mon Log", operator="T", key=log_key("Mon Log", 256))
    ca = CertificateAuthority("Mon CA", key_bits=256)
    for i in range(5):
        ca.issue(
            IssuanceRequest((f"mon{i}.example",)), [log],
            now + timedelta(minutes=i),
        )
    return log


def grow(log, count, start, prefix="late"):
    ca = CertificateAuthority("Late CA", key_bits=256)
    for i in range(count):
        ca.issue(
            IssuanceRequest((f"{prefix}{i}.example",)), [log],
            start + timedelta(minutes=i),
        )


# -- coercion and the in-memory transport ----------------------------------


def test_as_transport_wraps_logs_and_passes_transports(log_with_entries):
    transport = as_transport(log_with_entries)
    assert isinstance(transport, InMemoryTransport)
    assert transport.name == log_with_entries.name
    assert as_transport(transport) is transport


def test_in_memory_transport_parity_streaming(log_with_entries):
    direct = StreamingMonitor("s", SeededRng(1), latency_range_s=(60, 180))
    via_transport = StreamingMonitor(
        "s", SeededRng(1), latency_range_s=(60, 180)
    )
    a = direct.observe(log_with_entries)
    b = via_transport.observe(InMemoryTransport(log_with_entries))
    assert a == b
    assert len(a) == 5


def test_in_memory_transport_parity_batch(log_with_entries):
    direct = BatchMonitor("b", SeededRng(2), interval=timedelta(hours=2))
    via_transport = BatchMonitor("b", SeededRng(2), interval=timedelta(hours=2))
    assert direct.observe(log_with_entries) == via_transport.observe(
        InMemoryTransport(log_with_entries)
    )


def test_transport_cursor_is_shared_with_bare_log(log_with_entries, now):
    # One monitor, polled through a transport and then the bare log:
    # both are the same log name, so the cursor carries over.
    monitor = StreamingMonitor("s", SeededRng(3))
    assert len(monitor.observe(InMemoryTransport(log_with_entries))) == 5
    assert monitor.observe(log_with_entries) == []
    grow(log_with_entries, 2, now + timedelta(hours=1))
    assert len(monitor.observe(log_with_entries)) == 2


def test_in_memory_wire_ledger_counts_no_bytes(log_with_entries):
    transport = InMemoryTransport(log_with_entries)
    StreamingMonitor("s", SeededRng(4)).observe(transport)
    stats = transport.stats()
    assert stats["entries"] == 5
    assert stats["bytes"] == 0
    assert stats["requests"] >= 1


def test_flaky_log_through_transport_counts_monitor_error(log_with_entries):
    def fail_first_fetch():
        calls = {"n": 0}

        def predicate(method, _args):
            if method != "get_entries":
                return False
            calls["n"] += 1
            return calls["n"] == 1

        return predicate

    flaky = FlakyLog(
        log_with_entries,
        SeededRng(8),
        failure_rate=0.0,
        fail_when=fail_first_fetch(),
    )
    transport = InMemoryTransport(flaky)
    monitor = StreamingMonitor(
        "s", SeededRng(9), retry=RetryPolicy(max_attempts=1)
    )
    assert monitor.observe(transport) == []
    health = monitor.log_health()[log_with_entries.name]
    assert health["errors"] == 1
    assert health["cursor"] == 0
    # Next poll succeeds from the intact cursor.
    assert len(monitor.observe(transport)) == 5


# -- the same monitors over real HTTP --------------------------------------


def test_streaming_monitor_over_http_matches_in_memory(log_with_entries):
    in_memory = StreamingMonitor("s", SeededRng(11))
    over_http = StreamingMonitor("s", SeededRng(11))
    expected = in_memory.observe(log_with_entries)
    with LogServer(log_with_entries) as server:
        transport = HttpTransport(
            server.log_url(log_with_entries.name), log_with_entries.name
        )
        got = over_http.observe(transport)
    assert got == expected


def test_batch_monitor_over_http_cursor_grows(log_with_entries, now):
    monitor = BatchMonitor("b", SeededRng(12), interval=timedelta(hours=1))
    with LogServer(log_with_entries) as server:
        transport = HttpTransport(
            server.log_url(log_with_entries.name), log_with_entries.name
        )
        assert len(monitor.observe(transport)) == 5
        assert monitor.observe(transport) == []
        grow(log_with_entries, 3, now + timedelta(hours=1))
        fresh = monitor.observe(transport)
    assert len(fresh) == 3
    assert monitor.log_health()[log_with_entries.name]["cursor"] == 8


def test_http_transport_pages_through_entry_limit(log_with_entries):
    with LogServer(log_with_entries, page_limit=2) as server:
        transport = HttpTransport(
            server.log_url(log_with_entries.name),
            log_with_entries.name,
            page_size=2,
        )
        entries = transport.get_entries(0, 4)
    assert [entry.index for entry in entries] == [0, 1, 2, 3, 4]
    stats = transport.stats()
    assert stats["entries"] == 5
    assert stats["requests"] >= 3  # five entries, two per page
    assert stats["bytes"] > 0


def test_http_wire_ledger_exact_under_forced_retries(log_with_entries):
    # A fault mid-range forces the monitor's retry layer to refetch the
    # whole window.  The wire ledger must count exactly what crossed
    # the wire: the page received before the fault counts once, the
    # refetched pages count again, nothing is double-counted beyond
    # actual transfer.
    def fail_second_page_once():
        calls = {"n": 0}

        def predicate(method, call_args):
            if method != "get_entries" or call_args[0] != 2:
                return False
            calls["n"] += 1
            return calls["n"] == 1

        return predicate

    def run(log, retry):
        monitor = StreamingMonitor("s", SeededRng(21), retry=retry)
        with LogServer([log], page_limit=2) as server:
            transport = HttpTransport(
                server.log_url(log_with_entries.name),
                log_with_entries.name,
                page_size=2,
            )
            observations = monitor.observe(transport)
        return observations, transport.stats()

    control_obs, control = run(log_with_entries, None)
    assert control == {"requests": 4, "entries": 5, "bytes": control["bytes"]}

    flaky = FlakyLog(
        log_with_entries,
        SeededRng(22),
        failure_rate=0.0,
        fail_when=fail_second_page_once(),
    )
    # Over HTTP a server-side fault surfaces as a LogClientError (the
    # 500 response), so the policy must list it as retryable.
    faulty_obs, faulty = run(
        flaky,
        RetryPolicy(
            max_attempts=2, base_delay_s=0.0, retryable=(LogClientError,)
        ),
    )
    # The monitor's output is identical — the retry hid the fault.
    assert [o.entry.index for o in faulty_obs] == [
        o.entry.index for o in control_obs
    ]
    # get-sth, then pages (0,1) ok / (2,3) fault / full refetch (0,1),
    # (2,3), (4,4): six requests, seven entry bodies over the wire.
    assert faulty["requests"] == control["requests"] + 2
    assert faulty["entries"] == control["entries"] + 2
    # Bytes also count the failed attempt's error body plus the
    # refetched page, so they strictly exceed the clean run's total.
    assert faulty["bytes"] > control["bytes"]


def test_http_transport_failure_counts_monitor_error(log_with_entries):
    with LogServer(log_with_entries) as server:
        url = server.log_url(log_with_entries.name)
    # Server is gone: the poll fails, the cursor stays put.
    monitor = StreamingMonitor(
        "s", SeededRng(13), retry=RetryPolicy(max_attempts=1)
    )
    transport = HttpTransport(url, log_with_entries.name, timeout=0.5)
    assert monitor.observe(transport) == []
    health = monitor.log_health()[log_with_entries.name]
    assert health["errors"] == 1
    assert health["cursor"] == 0


def test_watch_logs_accepts_transports(log_with_entries):
    fast = StreamingMonitor("fast", SeededRng(14), latency_range_s=(1, 2))
    slow = StreamingMonitor("slow", SeededRng(15), latency_range_s=(500, 600))
    observations = watch_logs(
        [fast, slow], [InMemoryTransport(log_with_entries)]
    )
    times = [obs.observed_at for obs in observations]
    assert times == sorted(times)
    assert len(observations) == 10


def test_transport_base_stats_shape():
    transport = LogTransport("abstract")
    assert transport.stats() == {"requests": 0, "entries": 0, "bytes": 0}
    with pytest.raises(NotImplementedError):
        transport.tree_size()
