"""Tests for the Chrome CT policy engine."""

from datetime import date

import pytest

from repro.ct.policy import ChromeCTPolicy, ENFORCEMENT_DATE, required_sct_count
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def ca256():
    return CertificateAuthority("Policy CA", key_bits=256)


def test_required_sct_count_ladder():
    assert required_sct_count(3) == 2
    assert required_sct_count(14.9) == 2
    assert required_sct_count(15) == 3
    assert required_sct_count(27) == 3
    assert required_sct_count(30) == 4
    assert required_sct_count(39) == 4
    assert required_sct_count(48) == 5


def test_compliant_with_google_and_non_google(fresh_logs, ca256, now):
    policy = ChromeCTPolicy(fresh_logs)
    pair = ca256.issue(
        IssuanceRequest(("ok.example",), lifetime_days=90),
        [fresh_logs["Google Pilot log"], fresh_logs["Cloudflare Nimbus2018 Log"]],
        now,
    )
    assert policy.evaluate(pair.final_certificate, list(pair.scts)).compliant


def test_google_only_not_compliant(fresh_logs, ca256, now):
    policy = ChromeCTPolicy(fresh_logs)
    pair = ca256.issue(
        IssuanceRequest(("go.example",), lifetime_days=90),
        [fresh_logs["Google Pilot log"], fresh_logs["Google Rocketeer log"]],
        now,
    )
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant
    assert any("non-Google" in reason for reason in verdict.reasons)


def test_no_google_not_compliant(fresh_logs, ca256, now):
    policy = ChromeCTPolicy(fresh_logs)
    pair = ca256.issue(
        IssuanceRequest(("ng.example",), lifetime_days=90),
        [fresh_logs["Cloudflare Nimbus2018 Log"], fresh_logs["Venafi log"]],
        now,
    )
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant
    assert any("Google" in reason for reason in verdict.reasons)


def test_too_few_scts_for_long_lifetime(fresh_logs, ca256, now):
    policy = ChromeCTPolicy(fresh_logs)
    pair = ca256.issue(
        IssuanceRequest(("long.example",), lifetime_days=720),
        [fresh_logs["Google Pilot log"], fresh_logs["Venafi log"]],
        now,
    )
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant
    assert any("qualified SCTs" in reason for reason in verdict.reasons)


def test_disqualified_log_scts_dont_count(fresh_logs, ca256, now):
    policy = ChromeCTPolicy(fresh_logs)
    pair = ca256.issue(
        IssuanceRequest(("dq.example",), lifetime_days=90),
        [fresh_logs["Google Pilot log"], fresh_logs["Cloudflare Nimbus2018 Log"]],
        now,
    )
    fresh_logs["Cloudflare Nimbus2018 Log"].disqualify()
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant


def test_not_yet_included_log_does_not_qualify(fresh_logs, ca256):
    policy = ChromeCTPolicy(fresh_logs)
    early = utc_datetime(2017, 1, 15)  # Nimbus joined Chrome 2018-03
    pair = ca256.issue(
        IssuanceRequest(("early.example",), lifetime_days=90),
        [fresh_logs["Google Pilot log"], fresh_logs["Cloudflare Nimbus2018 Log"]],
        early,
    )
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant
    assert any("not-yet-qualified" in reason for reason in verdict.reasons)


def test_unknown_log_sct_flagged(fresh_logs, ca256, now):
    from repro.ct.log import CTLog
    from repro.ct.loglist import log_key

    rogue = CTLog(name="Rogue Log", operator="Rogue", key=log_key("Rogue Log", 256),
                  chrome_inclusion=date(2014, 1, 1))
    policy = ChromeCTPolicy(fresh_logs)  # rogue not in the trusted set
    pair = ca256.issue(
        IssuanceRequest(("rogue.example",), lifetime_days=90),
        [rogue, fresh_logs["Google Pilot log"]],
        now,
    )
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant
    assert any("unknown log" in reason for reason in verdict.reasons)


def test_enforcement_applies_from_deadline(fresh_logs, ca256):
    policy = ChromeCTPolicy(fresh_logs)
    before = ca256.issue(
        IssuanceRequest(("b.example",), embed_scts=False), [],
        utc_datetime(2018, 4, 17),
    )
    after = ca256.issue(
        IssuanceRequest(("a.example",), embed_scts=False), [],
        utc_datetime(2018, 4, 18),
    )
    assert not policy.enforcement_applies(before.final_certificate)
    assert policy.enforcement_applies(after.final_certificate)
    assert ENFORCEMENT_DATE == date(2018, 4, 18)
