"""Tests for domain-label redaction."""

import pytest

from repro.ct.redaction import (
    RedactionPolicy,
    leakage_reduction,
    redact_certificate,
    redact_name,
)
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def test_redact_all_hides_labels():
    policy = RedactionPolicy(redact_all_labels=True, keep_labels=())
    assert redact_name("dev.internal.example.com", policy) == "?.?.example.com"


def test_keep_labels_survive():
    policy = RedactionPolicy(redact_all_labels=True, keep_labels=("www",))
    assert redact_name("www.example.com", policy) == "www.example.com"
    assert redact_name("mail.example.com", policy) == "?.example.com"


def test_registrable_domain_never_redacted():
    policy = RedactionPolicy(redact_all_labels=True, keep_labels=())
    assert redact_name("example.co.uk", policy) == "example.co.uk"


def test_selective_redaction():
    policy = RedactionPolicy(
        redact_all_labels=False, sensitive_labels=("vpn", "intranet")
    )
    assert redact_name("vpn.example.com", policy) == "?.example.com"
    assert redact_name("www.example.com", policy) == "www.example.com"


def test_redact_certificate_covers_cn_and_san():
    ca = CertificateAuthority("Redact CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(
            ("secret.example.com", "www.example.com"),
            ip_addresses=("192.0.2.1",),
            embed_scts=False,
        ),
        [],
        utc_datetime(2018, 4, 1),
    )
    policy = RedactionPolicy()
    redacted = redact_certificate(pair.final_certificate, policy)
    assert redacted.subject_cn == "?.example.com"
    names = redacted.dns_names()
    assert "?.example.com" in names
    assert "www.example.com" in names
    # IP SANs untouched.
    assert redacted.ip_addresses() == ["192.0.2.1"]


def test_leakage_reduction_metrics():
    policy = RedactionPolicy(keep_labels=("www",))
    names = [
        "www.a.com",          # kept
        "mail.a.com",         # hidden
        "dev.api.b.de",       # two hidden
        "c.org",              # no labels
    ]
    impact = leakage_reduction(names, policy)
    assert impact.names_total == 4
    assert impact.labels_total == 4
    assert impact.labels_hidden == 3
    assert impact.hidden_vocabulary == {"mail", "dev", "api"}
    assert impact.unmonitorable_names == 2
    assert impact.label_reduction == pytest.approx(0.75)
    assert impact.monitoring_loss == pytest.approx(0.5)


def test_deneb_style_policy_kills_table2_leakage():
    """Full redaction removes the entire Section 4.2 vocabulary except
    for the kept labels — and blinds monitoring in equal measure."""
    from repro.workloads.domains import DomainWorkload

    corpus = DomainWorkload(scale=1 / 50_000, seed=3).build()
    policy = RedactionPolicy(keep_labels=("www",))
    impact = leakage_reduction(corpus.ct_fqdns, policy)
    assert "mail" in impact.hidden_vocabulary
    assert "cpanel" in impact.hidden_vocabulary
    assert "www" not in impact.hidden_vocabulary
    assert impact.label_reduction > 0.3
    assert impact.monitoring_loss > 0.1


def test_empty_corpus():
    impact = leakage_reduction([], RedactionPolicy())
    assert impact.label_reduction == 0.0
    assert impact.monitoring_loss == 0.0


class TestDenebSubmission:
    """Redacted logging a la Symantec Deneb, and why it never flew."""

    def test_redacted_precert_logged_without_leaking_labels(self, fresh_logs, now):
        from repro.ct.redaction import submit_redacted
        from repro.x509.ca import CertificateAuthority, IssuanceRequest

        ca = CertificateAuthority("Deneb CA", key_bits=256)
        pair = ca.issue(
            IssuanceRequest(("secret-lab.example.com",)), [], now
        )
        # Build a poisoned precert manually (no log submission yet).
        from repro.x509.certificate import Extension, POISON_EXTENSION_OID

        precert = pair.final_certificate.with_extensions(
            list(pair.final_certificate.extensions)
            + [Extension(POISON_EXTENSION_OID, critical=True)]
        )
        deneb = fresh_logs["Symantec Deneb log"]
        policy = RedactionPolicy(keep_labels=())
        sct, redacted = submit_redacted(
            precert, policy, deneb, ca.issuer_key_hash, now
        )
        logged_names = deneb.entries[-1].certificate.dns_names()
        assert all("secret-lab" not in name for name in logged_names)
        assert "?.example.com" in logged_names

    def test_redacted_sct_invalid_for_real_certificate(self, fresh_logs, now):
        """The incompatibility that kept redaction out of Chrome: the
        SCT covers the redacted bytes, not the real certificate."""
        from repro.ct.redaction import submit_redacted
        from repro.ct.sct import precert_signing_input
        from repro.x509.ca import CertificateAuthority, IssuanceRequest
        from repro.x509.certificate import Extension, POISON_EXTENSION_OID

        ca = CertificateAuthority("Deneb CA 2", key_bits=256)
        pair = ca.issue(IssuanceRequest(("vpn.corp.example",)), [], now)
        precert = pair.final_certificate.with_extensions(
            list(pair.final_certificate.extensions)
            + [Extension(POISON_EXTENSION_OID, critical=True)]
        )
        deneb = fresh_logs["Symantec Deneb log"]
        sct, redacted = submit_redacted(
            precert, RedactionPolicy(), deneb, ca.issuer_key_hash, now
        )
        real_input = precert_signing_input(
            pair.final_certificate, ca.issuer_key_hash
        )
        redacted_input = precert_signing_input(redacted, ca.issuer_key_hash)
        assert sct.verify(deneb.key, redacted_input)
        assert not sct.verify(deneb.key, real_input)
