"""Tests for SCT structures, serialization, and signing inputs."""

import pytest

from repro.ct.sct import (
    SctEntryType,
    SignedCertificateTimestamp,
    encode_sct_list,
    precert_signing_input,
    x509_signing_input,
)
from repro.x509.certificate import (
    SCT_LIST_EXTENSION_OID,
)
from repro.x509 import crypto


@pytest.fixture(scope="module")
def log_key():
    return crypto.KeyPair.generate("sct-test-log", 256)


def make_sct(log_key, entry_input, ts=1_523_542_619_000,
             entry_type=SctEntryType.PRECERT_ENTRY, extensions=b""):
    payload = SignedCertificateTimestamp.signed_payload(
        log_key.key_id, ts, entry_type, entry_input, extensions
    )
    return SignedCertificateTimestamp(
        log_id=log_key.key_id,
        timestamp_ms=ts,
        entry_type=entry_type,
        signature=crypto.sign(log_key, payload),
        extensions=extensions,
    )


def test_sct_verifies(log_key):
    sct = make_sct(log_key, b"entry-bytes")
    assert sct.verify(log_key, b"entry-bytes")


def test_sct_rejects_different_entry(log_key):
    sct = make_sct(log_key, b"entry-bytes")
    assert not sct.verify(log_key, b"other-bytes")


def test_sct_rejects_wrong_log(log_key):
    other = crypto.KeyPair.generate("other-log", 256)
    sct = make_sct(log_key, b"entry")
    assert not sct.verify(other, b"entry")


def test_sct_timestamp_property(log_key):
    sct = make_sct(log_key, b"e", ts=1_523_542_619_000)
    assert sct.timestamp.year == 2018


def test_encode_decode_roundtrip(log_key):
    scts = [
        make_sct(log_key, b"one"),
        make_sct(log_key, b"two", ts=1_523_542_620_000, extensions=b"ext"),
    ]
    decoded = SignedCertificateTimestamp.decode_list(encode_sct_list(scts))
    assert decoded == scts


def test_decode_empty_blob():
    assert SignedCertificateTimestamp.decode_list(b"") == []


def test_payload_binds_timestamp(log_key):
    sct = make_sct(log_key, b"entry", ts=1000)
    forged = SignedCertificateTimestamp(
        log_id=sct.log_id,
        timestamp_ms=2000,
        entry_type=sct.entry_type,
        signature=sct.signature,
    )
    assert not forged.verify(log_key, b"entry")


def test_payload_binds_entry_type(log_key):
    sct = make_sct(log_key, b"entry", entry_type=SctEntryType.PRECERT_ENTRY)
    forged = SignedCertificateTimestamp(
        log_id=sct.log_id,
        timestamp_ms=sct.timestamp_ms,
        entry_type=SctEntryType.X509_ENTRY,
        signature=sct.signature,
    )
    assert not forged.verify(log_key, b"entry")


class TestSigningInputs:
    def test_precert_input_ignores_poison_and_sct_list(self, issued_pair, ca):
        final = issued_pair.final_certificate
        precert = issued_pair.precertificate
        ikh = ca.issuer_key_hash
        # Reconstruction from the final cert equals the original input.
        assert precert_signing_input(final, ikh) == precert_signing_input(precert, ikh)

    def test_precert_input_binds_issuer_key_hash(self, issued_pair):
        final = issued_pair.final_certificate
        assert precert_signing_input(final, b"\x01" * 32) != precert_signing_input(
            final, b"\x02" * 32
        )

    def test_x509_input_ignores_sct_list_only(self, issued_pair):
        final = issued_pair.final_certificate
        stripped = final.without_extension(SCT_LIST_EXTENSION_OID)
        assert x509_signing_input(final) == x509_signing_input(stripped)

    def test_inputs_are_domain_separated(self, issued_pair, ca):
        final = issued_pair.final_certificate
        assert x509_signing_input(final) != precert_signing_input(
            final, ca.issuer_key_hash
        )
