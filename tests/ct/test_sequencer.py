"""The MMD sequencer: batched writes proven equivalent to per-entry.

Four families of guarantees:

* **MMD semantics** — submissions return an SCT immediately but stay
  invisible to readers until a merge; one STH per merge; deterministic
  ``merge``/``run_merges``/``drain`` driving.
* **dedup races** — resubmitting a still-pending certificate returns
  the original SCT and never enqueues a second entry, serial and
  threaded.
* **golden equivalence** — with a fixed clock, the fully-merged
  batched pipeline serves byte-identical JSON bodies to the per-entry
  write path (get-sth, get-entries, proofs, SCT responses).
* **incremental equivalence** — the sequencer-built log state is
  bit-identical to the unbatched path, serially and after a threaded
  race (replayed against a serial reference).
"""

import json
import threading
from datetime import timedelta

import pytest

from repro.ct.log import CTLog, LogOverloadedError
from repro.ct.merkle import leaf_hash, verify_inclusion_proof
from repro.ct.sct import precert_signing_input
from repro.ct.sequencer import LogSequencer
from repro.ct.server import LogServer
from repro.obs import EventLog, MetricsRegistry
from repro.util.timeutil import utc_datetime
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 12, 0)


def make_log(name="Seq Log", **kwargs):
    return CTLog(
        name=name,
        operator="Unit",
        key=crypto.KeyPair.generate(f"seq-unit:{name}", 256),
        **kwargs,
    )


def make_precerts(count, tag="seq"):
    ca = CertificateAuthority(f"Seq CA {tag}", key_bits=256)
    scratch = make_log(name=f"seq-scratch-{tag}")
    precerts = []
    for i in range(count):
        pair = ca.issue(
            IssuanceRequest((f"p{i}.{tag}.example",)), [scratch], NOW
        )
        precerts.append(pair.precertificate)
    return precerts, ca.issuer_key_hash


# -- MMD semantics -----------------------------------------------------------


def test_submission_is_pending_until_merge():
    log = make_log()
    sequencer = LogSequencer(log)
    precerts, ikh = make_precerts(3)

    scts = [
        sequencer.submit_pre_chain(p, ikh, NOW + timedelta(seconds=i))
        for i, p in enumerate(precerts)
    ]
    assert all(sct.signature for sct in scts)
    assert log.size == 0  # promise issued, inclusion deferred
    assert sequencer.pending_count() == 3
    assert sequencer.queued_count() == 3
    assert sequencer.latest_sth() is None

    result = sequencer.merge(NOW + timedelta(minutes=1))
    assert result.merged == 3
    assert result.tree_size == 3
    assert log.size == 3
    assert sequencer.pending_count() == 0


def test_merge_publishes_one_verifiable_sth_per_batch():
    log = make_log()
    sequencer = LogSequencer(log, max_batch=2)
    precerts, ikh = make_precerts(5)
    for p in precerts:
        sequencer.submit_pre_chain(p, ikh, NOW)

    results = sequencer.run_merges(10, NOW + timedelta(minutes=2))
    assert [r.merged for r in results] == [2, 2, 1]
    assert [r.tree_size for r in results] == [2, 4, 5]
    for result in results:
        assert result.sth is not None
        assert result.sth.verify(log.key)
        assert result.sth.tree_size <= log.size
    assert sequencer.latest_sth().tree_size == 5
    assert results[-1].max_lag_s == pytest.approx(120.0)


def test_empty_merge_is_a_noop():
    sequencer = LogSequencer(make_log())
    result = sequencer.merge(NOW)
    assert result.empty
    assert result.sth is None
    assert sequencer.stats()["merges"] == 0


def test_drain_merges_everything():
    log = make_log()
    sequencer = LogSequencer(log, max_batch=3)
    precerts, ikh = make_precerts(8)
    for p in precerts:
        sequencer.submit_pre_chain(p, ikh, NOW)
    assert sequencer.drain(NOW) == 8
    assert log.size == 8
    assert sequencer.queued_count() == 0
    stats = sequencer.stats()
    assert stats["merges"] == 3  # ceil(8 / 3)
    assert stats["max_batch_merged"] == 3


def test_background_worker_merges_without_explicit_calls():
    log = make_log()
    precerts, ikh = make_precerts(4)
    with LogSequencer(log, merge_interval=0.01) as sequencer:
        for p in precerts:
            sequencer.submit_pre_chain(p, ikh, NOW)
        deadline = threading.Event()
        for _ in range(500):
            if log.size == 4:
                break
            deadline.wait(0.01)
    assert log.size == 4
    assert sequencer.stats()["entries_merged"] == 4


def test_submit_chain_sequences_final_certificates():
    log = make_log(name="X509 Log")
    sequencer = LogSequencer(log)
    ca = CertificateAuthority("Seq X509 CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(("x509.seq.example",), embed_scts=False), [], NOW
    )
    sct = sequencer.submit_chain(pair.final_certificate, NOW)
    assert sct.signature
    assert log.size == 0
    assert sequencer.merge(NOW).merged == 1
    assert log.entries[0].entry_type.name == "X509_ENTRY"


def test_capacity_gate_applies_at_submission_time():
    log = make_log(capacity_per_day=2, strict_capacity=True)
    sequencer = LogSequencer(log)
    precerts, ikh = make_precerts(3)
    sequencer.submit_pre_chain(precerts[0], ikh, NOW)
    sequencer.submit_pre_chain(precerts[1], ikh, NOW)
    with pytest.raises(LogOverloadedError):
        sequencer.submit_pre_chain(precerts[2], ikh, NOW)
    # The rejected submission reserved nothing: merge sees exactly two.
    assert sequencer.drain(NOW) == 2
    assert log.size == 2


def test_sequencer_obs_wiring():
    metrics = MetricsRegistry()
    events = EventLog()
    log = make_log()
    sequencer = LogSequencer(log, metrics=metrics, events=events)
    precerts, ikh = make_precerts(3)
    for p in precerts:
        sequencer.submit_pre_chain(p, ikh, NOW)
    sequencer.submit_pre_chain(precerts[0], ikh, NOW)  # merged? no: pending dedup
    sequencer.drain(NOW + timedelta(seconds=30))
    sequencer.submit_pre_chain(precerts[0], ikh, NOW)  # merged dedup

    from repro.obs.metrics import metric_key

    snapshot = metrics.snapshot()
    name = log.name
    assert snapshot.counters[metric_key("sequencer.merges", {"log": name})] == 1
    assert (
        snapshot.counters[metric_key("sequencer.entries_merged", {"log": name})] == 3
    )
    assert (
        snapshot.counters[
            metric_key("sequencer.dedup_hits", {"log": name, "state": "pending"})
        ]
        == 1
    )
    assert (
        snapshot.counters[
            metric_key("sequencer.dedup_hits", {"log": name, "state": "merged"})
        ]
        == 1
    )
    assert snapshot.gauges[metric_key("sequencer.pending_depth", {"log": name})] == 0
    merge_events = [e for e in events.tail(100) if e["kind"] == "sequencer_merge"]
    assert len(merge_events) == 1
    assert merge_events[0]["batch"] == 3
    assert merge_events[0]["tree_size"] == 3
    assert merge_events[0]["max_lag_ms"] == pytest.approx(30000.0)


# -- dedup races (satellite: pending resubmission) ---------------------------


def test_pending_resubmission_returns_original_sct_without_second_entry():
    log = make_log()
    sequencer = LogSequencer(log)
    precerts, ikh = make_precerts(1)
    first = sequencer.submit_pre_chain(precerts[0], ikh, NOW)
    again = sequencer.submit_pre_chain(
        precerts[0], ikh, NOW + timedelta(seconds=5)
    )
    assert again is first  # the parked entry's SCT, not a re-signature
    assert sequencer.queued_count() == 1
    assert sequencer.pending_count() == 1
    assert sequencer.stats()["dedup_hits"] == 1

    assert sequencer.drain(NOW) == 1
    assert log.size == 1
    merged = sequencer.submit_pre_chain(
        precerts[0], ikh, NOW + timedelta(minutes=9)
    )
    assert merged.timestamp_ms == first.timestamp_ms
    assert merged.signature == first.signature
    assert log.size == 1  # still exactly one entry


def test_threaded_duplicate_race_yields_one_entry_one_sct():
    log = make_log()
    sequencer = LogSequencer(log)
    precerts, ikh = make_precerts(1)
    results = []
    errors = []
    barrier = threading.Barrier(8)

    def race():
        try:
            barrier.wait(timeout=10)
            results.append(sequencer.submit_pre_chain(precerts[0], ikh, NOW))
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=race) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert len(results) == 8
    # Every racer got the *same* SCT bytes, and only one entry exists.
    assert len({sct.signature for sct in results}) == 1
    assert sequencer.queued_count() == 1
    assert sequencer.drain(NOW) == 1
    assert log.size == 1
    # Quota was charged exactly once despite eight concurrent submitters.
    assert log.daily_submission_counts()[NOW.date()] == 1


# -- golden equivalence over HTTP bodies (satellite: byte-identical) ---------


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


def test_batched_pipeline_serves_byte_identical_bodies():
    """Fixed clock + same submissions: batched == per-entry, byte for byte."""
    clock = lambda: NOW  # noqa: E731 - deterministic server clock
    key_a = crypto.KeyPair.generate("seq-golden", 256)
    key_b = crypto.KeyPair.generate("seq-golden", 256)
    assert key_a.key_id == key_b.key_id  # same seed -> same log identity

    plain_log = CTLog(name="Golden Log", operator="Unit", key=key_a)
    seq_log = CTLog(name="Golden Log", operator="Unit", key=key_b)
    plain_server = LogServer(plain_log, clock=clock)
    sequencer = LogSequencer(seq_log, clock=clock, max_batch=4)
    seq_server = LogServer(sequencer, clock=clock)

    precerts, ikh = make_precerts(9, tag="golden")
    from tests.ct.test_server import submit_body

    for precert in precerts:
        body = submit_body(precert, ikh)
        status_a, sct_a, _ = plain_server.handle_request(
            "POST", "/ct/v1/add-pre-chain", "", body
        )
        status_b, sct_b, _ = seq_server.handle_request(
            "POST", "/ct/v1/add-pre-chain", "", body
        )
        assert status_a == status_b == 200
        # The SCT response is identical even *before* the merge.
        assert canonical(sct_a) == canonical(sct_b)

    assert seq_log.size == 0
    sequencer.drain()  # fully merged (clock is fixed, lag is zero)
    assert seq_log.size == plain_log.size == 9

    probes = [
        ("GET", "/ct/v1/get-sth", ""),
        ("GET", "/ct/v1/get-entries", "start=0&end=8"),
        ("GET", "/ct/v1/get-entries", "start=3&end=5"),
        ("GET", "/ct/v1/get-sth-consistency", "first=4&second=9"),
        ("GET", "/ct/v1/get-sth-consistency", "first=0&second=9"),
    ]
    import base64

    for precert in precerts:
        digest = leaf_hash(precert_signing_input(precert, ikh))
        quoted = base64.b64encode(digest).decode().replace("+", "%2B").replace(
            "/", "%2F"
        ).replace("=", "%3D")
        probes.append(
            ("GET", "/ct/v1/get-proof-by-hash", f"hash={quoted}&tree_size=9")
        )
    for method, path, query in probes:
        status_a, body_a, _ = plain_server.handle_request(method, path, query, b"")
        status_b, body_b, _ = seq_server.handle_request(method, path, query, b"")
        assert status_a == status_b == 200, (path, query)
        assert canonical(body_a) == canonical(body_b), (path, query)


# -- incremental equivalence -------------------------------------------------


def test_serial_sequencer_state_matches_unbatched_path():
    precerts, ikh = make_precerts(13, tag="serial-eq")
    reference = make_log(name="Eq Log")
    log = CTLog(name="Eq Log", operator="Unit", key=crypto.KeyPair.generate("seq-unit:Eq Log", 256))
    assert log.key.key_id == reference.key.key_id
    sequencer = LogSequencer(log, max_batch=5)

    ref_scts, seq_scts = [], []
    for i, precert in enumerate(precerts):
        when = NOW + timedelta(seconds=i)
        ref_scts.append(reference.add_pre_chain(precert, ikh, when))
        seq_scts.append(sequencer.submit_pre_chain(precert, ikh, when))
        if i % 4 == 3:
            sequencer.merge(when)
    sequencer.drain(NOW + timedelta(minutes=1))

    assert log.size == reference.size
    assert log.tree.root() == reference.tree.root()
    for size in range(reference.size + 1):
        assert log.tree.root(size) == reference.tree.root(size)
    for index in range(reference.size):
        assert log.tree.inclusion_proof(index) == reference.tree.inclusion_proof(index)
    assert [s.signature for s in seq_scts] == [s.signature for s in ref_scts]
    assert [e.leaf_input for e in log.entries] == [
        e.leaf_input for e in reference.entries
    ]
    assert log.entries == reference.entries
    assert log.daily_submission_counts() == reference.daily_submission_counts()


def test_threaded_sequencer_equals_serial_replay():
    precerts, ikh = make_precerts(24, tag="thread-eq")
    log = make_log(name="Race Log")
    sequencer = LogSequencer(log, max_batch=7)
    barrier = threading.Barrier(4)
    errors = []

    def submit(chunk):
        try:
            barrier.wait(timeout=10)
            for precert in chunk:
                sequencer.submit_pre_chain(precert, ikh, NOW)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(precerts[i::4],)) for i in range(4)
    ]
    merger = threading.Thread(
        target=lambda: [sequencer.merge(NOW) for _ in range(6)]
    )
    for t in threads:
        t.start()
    merger.start()
    for t in threads + [merger]:
        t.join(timeout=60)
    assert not errors
    sequencer.drain(NOW)

    assert log.size == 24  # nothing lost, nothing duplicated
    assert len({e.leaf_input for e in log.entries}) == 24

    # Replay the *observed* entry order serially through the unbatched
    # path: the threaded pipeline must have produced the same tree.
    replay = CTLog(
        name="Race Log",
        operator="Unit",
        key=crypto.KeyPair.generate("seq-unit:Race Log", 256),
    )
    for entry in log.entries:
        replay.tree.append(entry.leaf_input)
    assert replay.tree.root() == log.tree.root()
    for size in range(25):
        assert replay.tree.root(size) == log.tree.root(size)

    # Every SCT's promise is honoured: its leaf verifies inclusion
    # against the final root.
    root = log.tree.root()
    for precert in precerts:
        leaf = precert_signing_input(precert, ikh)
        index = log.tree.leaf_index(leaf_hash(leaf))
        assert index is not None
        proof = log.tree.inclusion_proof(index)
        assert verify_inclusion_proof(leaf, index, 24, proof, root)


def test_sequencer_rejects_bad_parameters():
    log = make_log(name="Param Log")
    with pytest.raises(ValueError):
        LogSequencer(log, max_batch=0)
    with pytest.raises(ValueError):
        LogSequencer(log, merge_interval=-1.0)
    sequencer = LogSequencer(log)
    with pytest.raises(ValueError):
        sequencer.merge(NOW, max_batch=0)
    final_ca = CertificateAuthority("Seq Final CA", key_bits=256)
    pair = final_ca.issue(
        IssuanceRequest(("final.seq.example",), embed_scts=False), [], NOW
    )
    with pytest.raises(ValueError):
        sequencer.submit_pre_chain(pair.final_certificate, b"x" * 32, NOW)
    precerts, ikh = make_precerts(1, tag="param")
    with pytest.raises(ValueError):
        sequencer.submit_chain(precerts[0], NOW)
