"""Unit tests for the RFC 6962 HTTP front end (no sockets).

Everything here drives :meth:`repro.ct.server.LogServer.handle_request`
directly — routing, parameter validation, error mapping, memoization,
and the request-logging middleware — so the boundary behaviour is
pinned without binding a port.  The live-socket behaviour (real HTTP,
concurrency, harvest parity) lives in
``tests/integration/test_log_server_live.py``.
"""

import base64
import json
from datetime import timedelta

import pytest

from repro.ct.log import CTLog, SignedTreeHead
from repro.ct.merkle import (
    EMPTY_TREE_HASH,
    leaf_hash,
    verify_consistency_proof,
    verify_inclusion_proof,
)
from repro.ct.server import (
    LogServer,
    entry_from_wire,
    entry_to_wire,
    log_slug,
)
from repro.obs import EventLog, MetricsRegistry
from repro.util.timeutil import utc_datetime
from repro.x509 import crypto
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 12, 0)


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def make_log(name="Unit Log", entries=5, **kwargs):
    log = CTLog(
        name=name,
        operator="Unit",
        key=crypto.KeyPair.generate(f"unit:{name}", 256),
        **kwargs,
    )
    ca = CertificateAuthority(f"Unit CA {name}", key_bits=256)
    for i in range(entries):
        ca.issue(
            IssuanceRequest((f"e{i}.{log_slug(name)}.example",)),
            [log],
            NOW + timedelta(seconds=i),
        )
    return log


def make_precerts(count, tag="sub"):
    """Distinct precertificates (issued into a scratch log) + key hash."""
    ca = CertificateAuthority(f"Submit CA {tag}", key_bits=256)
    scratch = CTLog(
        name=f"scratch-{tag}",
        operator="Unit",
        key=crypto.KeyPair.generate(f"scratch:{tag}", 256),
    )
    precerts = []
    for i in range(count):
        pair = ca.issue(
            IssuanceRequest((f"p{i}.{tag}.example",)), [scratch], NOW
        )
        precerts.append(pair.precertificate)
    return precerts, ca.issuer_key_hash


def submit_body(precert, issuer_key_hash):
    from repro.ct.storage import certificate_to_dict

    return json.dumps(
        {
            "chain": [certificate_to_dict(precert)],
            "issuer_key_hash": _b64(issuer_key_hash),
        }
    ).encode()


def get(server, path, query=""):
    return server.handle_request("GET", path, query, b"")


def assert_json_error(result, status):
    got_status, payload, _ = result
    assert got_status == status
    assert payload["code"] == status
    assert isinstance(payload["error"], str) and payload["error"]
    json.dumps(payload)  # always serialisable


# -- slugs and wire format ---------------------------------------------------


def test_log_slug():
    assert log_slug("Google Pilot log") == "google-pilot-log"
    assert log_slug("  DigiCert Log Server 2 ") == "digicert-log-server-2"
    with pytest.raises(ValueError):
        log_slug("!!!")


def test_entry_wire_round_trip():
    log = make_log(entries=3)
    for entry in log.entries:
        back = entry_from_wire(entry_to_wire(entry))
        assert back == entry


# -- mounting ----------------------------------------------------------------


def test_single_log_mounts_bare_and_slugged():
    log = make_log()
    server = LogServer(log, clock=lambda: NOW)
    for path in ("/ct/v1/get-sth", f"/{log_slug(log.name)}/ct/v1/get-sth"):
        status, payload, endpoint = get(server, path)
        assert status == 200
        assert payload["tree_size"] == 5
        assert endpoint == "get-sth"


def test_multi_log_requires_slug_prefix():
    logs = [make_log("Alpha Log", 2), make_log("Beta Log", 3)]
    server = LogServer(logs, clock=lambda: NOW)
    assert server.slugs == ["alpha-log", "beta-log"]
    assert_json_error(get(server, "/ct/v1/get-sth"), 404)
    status, payload, _ = get(server, "/beta-log/ct/v1/get-sth")
    assert status == 200 and payload["tree_size"] == 3


def test_duplicate_slug_rejected():
    with pytest.raises(ValueError, match="duplicate log slug"):
        LogServer([make_log("Same Name"), make_log("same name")])


def test_index_lists_served_logs():
    server = LogServer([make_log("Alpha Log", 2)], clock=lambda: NOW)
    status, payload, endpoint = get(server, "/")
    assert status == 200 and endpoint == "index"
    assert payload == {
        "logs": [
            {
                "slug": "alpha-log",
                "name": "Alpha Log",
                "operator": "Unit",
                "tree_size": 2,
                "disqualified": False,
                "url": "/alpha-log",
            }
        ]
    }


def test_log_url_requires_started_server_and_known_name():
    server = LogServer(make_log())
    with pytest.raises(KeyError):
        server.log_url("No Such Log")


def test_unknown_route_and_endpoint_are_404():
    server = LogServer(make_log(), clock=lambda: NOW)
    assert_json_error(get(server, "/nope"), 404)
    assert_json_error(get(server, "/unit-log/ct/v1/get-nothing"), 404)


def test_wrong_method_is_405():
    server = LogServer(make_log(), clock=lambda: NOW)
    assert_json_error(
        server.handle_request("POST", "/ct/v1/get-sth", "", b""), 405
    )
    assert_json_error(
        server.handle_request("GET", "/ct/v1/add-pre-chain", "", b""), 405
    )
    assert_json_error(server.handle_request("POST", "/", "", b""), 405)


# -- get-sth -----------------------------------------------------------------


def test_get_sth_signature_verifies():
    log = make_log()
    server = LogServer(log, clock=lambda: NOW)
    _, payload, _ = get(server, "/ct/v1/get-sth")
    root = base64.b64decode(payload["sha256_root_hash"])
    assert root == log.tree.root()
    covered = SignedTreeHead.signed_payload(
        payload["tree_size"], payload["timestamp"], root
    )
    assert crypto.verify(
        log.key, covered, base64.b64decode(payload["tree_head_signature"])
    )


def test_get_sth_of_empty_log_is_valid_tree_size_zero():
    server = LogServer(make_log(entries=0), clock=lambda: NOW)
    status, payload, _ = get(server, "/ct/v1/get-sth")
    assert status == 200
    assert payload["tree_size"] == 0
    assert base64.b64decode(payload["sha256_root_hash"]) == EMPTY_TREE_HASH


# -- get-entries boundaries --------------------------------------------------


def test_get_entries_happy_path_round_trips():
    log = make_log()
    server = LogServer(log, clock=lambda: NOW)
    status, payload, _ = get(server, "/ct/v1/get-entries", "start=1&end=3")
    assert status == 200
    entries = [entry_from_wire(el) for el in payload["entries"]]
    assert entries == log.entries[1:4]


def test_get_entries_empty_log_is_400():
    server = LogServer(make_log(entries=0), clock=lambda: NOW)
    assert_json_error(
        get(server, "/ct/v1/get-entries", "start=0&end=0"), 400
    )


def test_get_entries_start_after_end_is_400():
    server = LogServer(make_log(), clock=lambda: NOW)
    assert_json_error(
        get(server, "/ct/v1/get-entries", "start=3&end=1"), 400
    )
    assert_json_error(
        get(server, "/ct/v1/get-entries", "start=-1&end=2"), 400
    )


def test_get_entries_start_beyond_size_is_400():
    server = LogServer(make_log(entries=5), clock=lambda: NOW)
    assert_json_error(
        get(server, "/ct/v1/get-entries", "start=5&end=9"), 400
    )


def test_get_entries_end_beyond_size_is_clamped_not_500():
    server = LogServer(make_log(entries=5), clock=lambda: NOW)
    status, payload, _ = get(
        server, "/ct/v1/get-entries", "start=3&end=100000"
    )
    assert status == 200
    assert len(payload["entries"]) == 2  # entries 3 and 4


def test_get_entries_respects_page_limit():
    server = LogServer(make_log(entries=5), clock=lambda: NOW, page_limit=2)
    status, payload, _ = get(server, "/ct/v1/get-entries", "start=0&end=4")
    assert status == 200
    assert len(payload["entries"]) == 2  # clamped to the serving limit


def test_get_entries_malformed_params_are_400():
    server = LogServer(make_log(), clock=lambda: NOW)
    assert_json_error(get(server, "/ct/v1/get-entries", "start=0"), 400)
    assert_json_error(
        get(server, "/ct/v1/get-entries", "start=zero&end=4"), 400
    )
    assert_json_error(get(server, "/ct/v1/get-entries", ""), 400)


# -- get-proof-by-hash boundaries --------------------------------------------


def test_get_proof_by_hash_verifies():
    log = make_log()
    server = LogServer(log, clock=lambda: NOW)
    leaf = log.entries[2].leaf_input
    status, payload, _ = get(
        server,
        "/ct/v1/get-proof-by-hash",
        f"hash={_b64(leaf_hash(leaf)).replace('+', '%2B').replace('/', '%2F')}"
        "&tree_size=5",
    )
    assert status == 200
    assert payload["leaf_index"] == 2
    path = [base64.b64decode(node) for node in payload["audit_path"]]
    assert verify_inclusion_proof(leaf, 2, 5, path, log.tree.root())


def test_get_proof_by_hash_invalid_base64_is_400():
    server = LogServer(make_log(), clock=lambda: NOW)
    assert_json_error(
        get(server, "/ct/v1/get-proof-by-hash", "hash=%%%&tree_size=5"), 400
    )


def test_get_proof_by_hash_unknown_hash_is_404():
    server = LogServer(make_log(), clock=lambda: NOW)
    missing = _b64(leaf_hash(b"never appended"))
    assert_json_error(
        get(
            server,
            "/ct/v1/get-proof-by-hash",
            f"hash={missing.replace('+', '%2B').replace('/', '%2F')}"
            "&tree_size=5",
        ),
        404,
    )


def test_get_proof_by_hash_bad_tree_size_is_400():
    log = make_log(entries=5)
    server = LogServer(log, clock=lambda: NOW)
    digest = _b64(leaf_hash(log.entries[0].leaf_input))
    quoted = digest.replace("+", "%2B").replace("/", "%2F")
    for tree_size in (0, -1, 6):
        assert_json_error(
            get(
                server,
                "/ct/v1/get-proof-by-hash",
                f"hash={quoted}&tree_size={tree_size}",
            ),
            400,
        )


def test_get_proof_by_hash_leaf_outside_prefix_is_400():
    log = make_log(entries=5)
    server = LogServer(log, clock=lambda: NOW)
    digest = _b64(leaf_hash(log.entries[4].leaf_input))
    quoted = digest.replace("+", "%2B").replace("/", "%2F")
    assert_json_error(
        get(
            server,
            "/ct/v1/get-proof-by-hash",
            f"hash={quoted}&tree_size=3",
        ),
        400,
    )


# -- get-sth-consistency boundaries ------------------------------------------


def test_get_consistency_verifies():
    log = make_log(entries=5)
    server = LogServer(log, clock=lambda: NOW)
    status, payload, _ = get(
        server, "/ct/v1/get-sth-consistency", "first=2&second=5"
    )
    assert status == 200
    proof = [base64.b64decode(node) for node in payload["consistency"]]
    assert verify_consistency_proof(
        2, 5, log.tree.root(2), log.tree.root(5), proof
    )


def test_get_consistency_invalid_ranges_are_400():
    server = LogServer(make_log(entries=5), clock=lambda: NOW)
    for query in ("first=3&second=2", "first=-1&second=2", "first=0&second=6"):
        assert_json_error(
            get(server, "/ct/v1/get-sth-consistency", query), 400
        )


# -- add-pre-chain -----------------------------------------------------------


def test_add_pre_chain_returns_verifiable_sct():
    log = make_log(entries=1)
    server = LogServer(log, clock=lambda: NOW)
    (precert,), issuer_key_hash = make_precerts(1, "ok")
    status, payload, _ = server.handle_request(
        "POST",
        "/ct/v1/add-pre-chain",
        "",
        submit_body(precert, issuer_key_hash),
    )
    assert status == 200
    assert set(payload) == {
        "sct_version", "id", "timestamp", "extensions", "signature"
    }
    assert base64.b64decode(payload["id"]) == log.log_id
    assert log.size == 2  # appended for real


def test_add_pre_chain_malformed_bodies_are_400():
    server = LogServer(make_log(entries=1), clock=lambda: NOW)
    (precert,), ikh = make_precerts(1, "bad")
    from repro.ct.storage import certificate_to_dict

    bodies = [
        b"not json",
        json.dumps([1, 2]).encode(),
        json.dumps({"chain": []}).encode(),
        json.dumps({"chain": [{"bogus": 1}], "issuer_key_hash": "AA=="}).encode(),
        json.dumps(
            {"chain": [certificate_to_dict(precert)]}  # missing key hash
        ).encode(),
        json.dumps(
            {
                "chain": [certificate_to_dict(precert)],
                "issuer_key_hash": "!!!not-base64!!!",
            }
        ).encode(),
    ]
    bodies.append(
        json.dumps(
            {"chain": [certificate_to_dict(precert)], "issuer_key_hash": 12345}
        ).encode()  # wrong type entirely
    )
    for body in bodies:
        assert_json_error(
            server.handle_request("POST", "/ct/v1/add-pre-chain", "", body),
            400,
        )


def test_add_pre_chain_final_certificate_is_400():
    """A non-poisoned (final) certificate is a ValueError -> 400."""
    log = make_log(entries=1)
    server = LogServer(log, clock=lambda: NOW)
    ca = CertificateAuthority("Final CA", key_bits=256)
    pair = ca.issue(IssuanceRequest(("final.example",)), [], NOW)
    assert pair.precertificate is None
    assert_json_error(
        server.handle_request(
            "POST",
            "/ct/v1/add-pre-chain",
            "",
            submit_body(pair.final_certificate, ca.issuer_key_hash),
        ),
        400,
    )


def test_add_pre_chain_overload_is_429():
    log = make_log(entries=0, capacity_per_day=2, strict_capacity=True)
    server = LogServer(log, clock=lambda: NOW)
    precerts, ikh = make_precerts(3, "overload")
    statuses = [
        server.handle_request(
            "POST", "/ct/v1/add-pre-chain", "", submit_body(p, ikh)
        )[0]
        for p in precerts
    ]
    assert statuses == [200, 200, 429]
    assert log.size == 2


def test_disqualified_log_is_410():
    log = make_log(entries=1)
    log.disqualify()
    server = LogServer(log, clock=lambda: NOW)
    (precert,), ikh = make_precerts(1, "gone")
    assert_json_error(
        server.handle_request(
            "POST", "/ct/v1/add-pre-chain", "", submit_body(precert, ikh)
        ),
        410,
    )


# -- memoization -------------------------------------------------------------


def test_sth_memoized_per_tree_size():
    log = make_log(entries=2)
    server = LogServer(log, clock=lambda: NOW)
    slug = log_slug(log.name)
    first = get(server, "/ct/v1/get-sth")[1]
    second = get(server, "/ct/v1/get-sth")[1]
    assert first is second  # same cached body, one signature
    stats = server.memo_stats()[slug]
    assert stats == {"hits": 1, "misses": 1, "lookups": 2, "hit_rate": 0.5}

    (precert,), ikh = make_precerts(1, "grow")
    server.handle_request(
        "POST", "/ct/v1/add-pre-chain", "", submit_body(precert, ikh)
    )
    third = get(server, "/ct/v1/get-sth")[1]
    assert third["tree_size"] == 3  # re-signed after growth
    assert server.memo_stats()[slug]["misses"] == 2


def test_proof_and_entries_pages_are_memoized():
    log = make_log(entries=5)
    server = LogServer(log, clock=lambda: NOW)
    slug = log_slug(log.name)
    for _ in range(3):
        assert get(server, "/ct/v1/get-entries", "start=0&end=4")[0] == 200
        assert (
            get(server, "/ct/v1/get-sth-consistency", "first=2&second=5")[0]
            == 200
        )
    stats = server.memo_stats()[slug]
    assert stats["misses"] == 2  # one per distinct key
    assert stats["hits"] == 4
    assert stats["lookups"] == 6
    assert stats["hit_rate"] == pytest.approx(4 / 6)


def test_memo_stats_before_any_request_has_zero_hit_rate():
    """Scraping a fresh server's stats must not divide by zero."""
    server = LogServer(make_log(entries=3), clock=lambda: NOW)
    stats = server.memo_stats()[log_slug("Unit Log")]
    assert stats == {"hits": 0, "misses": 0, "lookups": 0, "hit_rate": 0.0}


def test_invalid_requests_never_touch_the_memo():
    """Junk ranges can't skew hit rates or evict cached pages."""
    log = make_log(entries=5)
    server = LogServer(log, clock=lambda: NOW)
    slug = log_slug(log.name)
    served = server._served[slug]

    # Warm one legitimate page into the cache.
    assert get(server, "/ct/v1/get-entries", "start=0&end=4")[0] == 200
    warmed = server.memo_stats()[slug]
    assert ("entries", 0, 4) in served.memo

    for query in (
        "start=-1&end=4",        # negative start
        "start=9&end=2",         # start after end
        "start=99&end=104",      # start beyond tree size
        "start=zero&end=4",      # non-integer
        "end=4",                 # missing parameter
    ):
        assert get(server, "/ct/v1/get-entries", query)[0] == 400
    empty = LogServer(make_log(name="Empty", entries=0), clock=lambda: NOW)
    assert get(empty, "/ct/v1/get-entries", "start=0&end=0")[0] == 400

    assert server.memo_stats()[slug] == warmed  # not a single lookup
    assert empty.memo_stats()[log_slug("Empty")]["lookups"] == 0
    assert ("entries", 0, 4) in served.memo  # nothing evicted
    assert len(served.memo) == 1


# -- harvest pinned to the fetched STH ---------------------------------------


class _OveransweringClient:
    """A replica that answers ``get-entries`` past the requested range.

    Duck-types the two :class:`~repro.ct.server.LogClient` methods
    :func:`harvest_log` uses; the STH is pinned at issuance time while
    the backing log keeps growing, so every page call can over-answer
    beyond the verified tree head.
    """

    def __init__(self, log, sth):
        self.log = log
        self.sth = sth

    def get_sth(self):
        return self.sth

    def get_entries(self, start, end):
        # Ignore ``end`` entirely: hand out everything from ``start``.
        return self.log.get_entries(start, self.log.size - 1)


def _pinned_sth(log):
    sth = log.get_sth(NOW)
    return {
        "tree_size": sth.tree_size,
        "sha256_root_hash": _b64(sth.root_hash),
    }


def test_harvest_truncates_pages_beyond_the_pinned_sth():
    from repro.ct.server import harvest_log

    log = make_log(entries=6)
    sth = _pinned_sth(log)  # pin at size 6...
    ca = CertificateAuthority("Unit CA Unit Log", key_bits=256)
    for i in range(4):  # ...then the log grows underneath the harvest
        ca.issue(IssuanceRequest((f"late{i}.example",)), [log], NOW)
    assert log.size == 10

    from repro.dataset import LiveAnalytics

    live = LiveAnalytics()
    replica = harvest_log(
        _OveransweringClient(log, sth), page_size=4, analytics=live
    )
    assert replica.size == 6
    assert [entry.index for entry in replica.entries] == list(range(6))
    # The analytics fold saw only the verified window, nothing more.
    assert live.records_folded == 6


# -- middleware --------------------------------------------------------------


def test_middleware_records_metrics_and_events():
    metrics = MetricsRegistry()
    events = EventLog(clock=lambda: 1525.0)
    server = LogServer(
        make_log(entries=3), clock=lambda: NOW, metrics=metrics, events=events
    )
    get(server, "/ct/v1/get-sth")
    get(server, "/ct/v1/get-entries", "start=9&end=9")  # 400
    get(server, "/nope")  # 404 before routing

    snapshot = metrics.snapshot()
    assert snapshot.counters[
        "log_server.responses{endpoint=get-sth,status=200}"
    ] == 1
    assert snapshot.counters[
        "log_server.responses{endpoint=get-entries,status=400}"
    ] == 1
    assert snapshot.counters[
        "log_server.responses{endpoint=unknown,status=404}"
    ] == 1
    histogram_keys = [
        key
        for key in snapshot.histograms
        if key.startswith("log_server.request_seconds")
    ]
    assert any("endpoint=get-sth" in key for key in histogram_keys)

    kinds = [record["kind"] for record in events.tail(10)]
    assert kinds == ["log_server_request"] * 3
    statuses = [record["status"] for record in events.tail(10)]
    assert statuses == [200, 400, 404]
    assert events.tail(10)[0]["log"] == "unit-log"
