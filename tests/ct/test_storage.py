"""Tests for log harvest persistence."""

from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.storage import (
    LogStorageError,
    certificate_from_dict,
    certificate_to_dict,
    dump_log,
    iter_stored_entries,
    load_log,
)
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 4, 1)


@pytest.fixture()
def populated_log():
    log = CTLog(name="Store Log", operator="T", key=log_key("Store Log", 256))
    ca = CertificateAuthority("Store CA", key_bits=256)
    for i in range(7):
        ca.issue(
            IssuanceRequest((f"s{i}.example", f"www.s{i}.example")),
            [log],
            NOW + timedelta(minutes=i),
        )
    return log


def fresh_copy_of(log):
    return CTLog(name=log.name, operator=log.operator, key=log.key)


def test_certificate_dict_roundtrip(populated_log):
    cert = populated_log.entries[0].certificate
    assert certificate_from_dict(certificate_to_dict(cert)) == cert


def test_dump_load_roundtrip(populated_log, tmp_path):
    path = tmp_path / "harvest.jsonl"
    assert dump_log(populated_log, path) == 7
    restored = fresh_copy_of(populated_log)
    assert load_log(path, restored) == 7
    assert restored.tree.root() == populated_log.tree.root()
    assert [e.certificate for e in restored.entries] == [
        e.certificate for e in populated_log.entries
    ]


def test_restored_log_serves_valid_proofs(populated_log, tmp_path):
    from repro.ct.merkle import verify_inclusion_proof

    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    restored = fresh_copy_of(populated_log)
    load_log(path, restored)
    sth = restored.get_sth(NOW + timedelta(hours=1))
    entry = restored.entries[3]
    proof = restored.get_proof_by_hash(entry.index, sth.tree_size)
    assert verify_inclusion_proof(
        entry.leaf_input, entry.index, sth.tree_size, proof, sth.root_hash
    )


def test_truncated_harvest_rejected(populated_log, tmp_path):
    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    lines = path.read_text().splitlines()
    # Drop one entry but keep the trailer.
    path.write_text("\n".join(lines[1:]) + "\n")
    with pytest.raises(LogStorageError):
        load_log(path, fresh_copy_of(populated_log))


def test_tampered_entry_rejected(populated_log, tmp_path):
    import json

    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    lines = path.read_text().splitlines()
    record = json.loads(lines[0])
    record["leaf_input"] = record["leaf_input"][:-4] + "AAA="
    lines[0] = json.dumps(record)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(LogStorageError):
        load_log(path, fresh_copy_of(populated_log))


def test_missing_trailer_rejected(populated_log, tmp_path):
    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(LogStorageError):
        load_log(path, fresh_copy_of(populated_log))


def test_load_into_nonempty_log_rejected(populated_log, tmp_path):
    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    with pytest.raises(ValueError):
        load_log(path, populated_log)


def test_iter_stored_entries_order(populated_log, tmp_path):
    path = tmp_path / "harvest.jsonl"
    dump_log(populated_log, path)
    records = list(iter_stored_entries(path))
    assert records[-1]["type"] == "tree-head"
    assert [r["index"] for r in records[:-1]] == list(range(7))


class TestCorruptLineHandling:
    """A torn trailing write must not abort scan-only consumers."""

    @pytest.fixture()
    def harvest(self, populated_log, tmp_path):
        path = tmp_path / "harvest.jsonl"
        dump_log(populated_log, path)
        return path

    def test_truncated_trailing_line_skipped_by_default(self, harvest):
        reference = list(iter_stored_entries(harvest))
        with harvest.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "entry", "index": 9')  # torn write
        assert list(iter_stored_entries(harvest)) == reference

    def test_skipped_lines_are_counted(self, harvest):
        from repro.obs import MetricsRegistry

        with harvest.open("a", encoding="utf-8") as handle:
            handle.write("garbage that is not json\n")
            handle.write('"a json string, not an object"\n')
        metrics = MetricsRegistry()
        list(iter_stored_entries(harvest, metrics=metrics))
        assert (
            metrics.snapshot().counter("storage.corrupt_lines_skipped") == 2
        )

    def test_raise_mode_names_the_corrupt_line(self, harvest):
        with harvest.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "entry"')
        with pytest.raises(LogStorageError, match="line 9"):
            list(iter_stored_entries(harvest, on_corrupt="raise"))

    def test_non_object_line_rejected_in_raise_mode(self, harvest):
        with harvest.open("a", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(LogStorageError, match="not an object"):
            list(iter_stored_entries(harvest, on_corrupt="raise"))

    def test_unknown_mode_rejected(self, harvest):
        with pytest.raises(ValueError, match="on_corrupt"):
            list(iter_stored_entries(harvest, on_corrupt="ignore"))

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(iter_stored_entries(path)) == []

    def test_blank_lines_are_not_corruption(self, harvest):
        from repro.obs import MetricsRegistry

        reference = list(iter_stored_entries(harvest))
        text = harvest.read_text().replace("\n", "\n\n")
        harvest.write_text(text)
        metrics = MetricsRegistry()
        assert list(iter_stored_entries(harvest, metrics=metrics)) == reference
        assert (
            metrics.snapshot().counter("storage.corrupt_lines_skipped") == 0
        )

    def test_duplicate_entry_lines_still_fail_merkle_verification(
        self, populated_log, harvest
    ):
        """Skip-with-counter never weakens load_log's integrity check."""
        import json

        lines = harvest.read_text().splitlines()
        entry = next(l for l in lines if json.loads(l)["type"] == "entry")
        lines[-1:-1] = [entry]  # duplicate one entry before the trailer
        harvest.write_text("\n".join(lines) + "\n")
        with pytest.raises(LogStorageError):
            load_log(harvest, fresh_copy_of(populated_log))


def test_dump_empty_log(tmp_path):
    empty = CTLog(name="Empty", operator="T", key=log_key("Empty", 256))
    path = tmp_path / "empty.jsonl"
    assert dump_log(empty, path) == 0
    restored = CTLog(name="Empty", operator="T", key=empty.key)
    assert load_log(path, restored) == 0
    assert restored.tree.size == 0
