"""Sharded re-analysis and checkpointing of stored harvests.

A harvest saved serially must load and verify identically when
re-analyzed with ``workers > 1``, and a corrupted shard checkpoint
must raise :class:`LogStorageError` rather than silently resuming.
"""

import json

import pytest

from repro.ct.log import CTLog
from repro.ct.storage import (
    HarvestCheckpoint,
    LogStorageError,
    dump_log,
    load_log,
    read_tree_head,
)
from repro.pipeline import PipelineEngine, analyze_harvest_names
from repro.pipeline.harvest import FQDN_LEAKAGE_PASS, harvest_entry_names
from repro.x509.ca import IssuanceRequest


@pytest.fixture()
def harvest(tmp_path, ca, fresh_logs, now):
    """A serially saved harvest of one log with 20 certificates."""
    log = fresh_logs["Google Pilot log"]
    for index in range(20):
        ca.issue(
            IssuanceRequest(
                (f"host{index}.example.org", f"www.host{index}.example.org")
            ),
            [log],
            now,
        )
    path = tmp_path / "pilot.jsonl"
    count = dump_log(log, path)
    assert count == len(log.entries)
    return path, log


class TestShardedHarvestAnalysis:
    def test_parallel_reanalysis_matches_serial(self, harvest):
        path, _ = harvest
        serial = analyze_harvest_names(path)
        parallel = analyze_harvest_names(
            path, PipelineEngine(workers=3, shard_size=7)
        )
        assert parallel == serial
        assert serial.unique_fqdns == 40  # 2 names per certificate

    def test_harvest_still_loads_and_verifies(self, harvest):
        path, log = harvest
        analyze_harvest_names(path, PipelineEngine(workers=2, shard_size=5))
        restored = CTLog(name=log.name, operator=log.operator, key=log.key)
        assert load_log(path, restored) == len(log.entries)
        assert restored.tree.root() == log.tree.root()

    def test_entry_name_ranges_partition_the_harvest(self, harvest):
        path, _ = harvest
        full = harvest_entry_names(path, 0, 20)
        pieces = [harvest_entry_names(path, i, i + 4) for i in range(0, 20, 4)]
        assert [name for piece in pieces for name in piece] == full

    def test_read_tree_head(self, harvest):
        path, log = harvest
        trailer = read_tree_head(path)
        assert trailer["tree_size"] == len(log.entries)

    def test_read_tree_head_missing_trailer(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type":"entry"}\n', encoding="utf-8")
        with pytest.raises(LogStorageError):
            read_tree_head(path)


class TestHarvestCheckpoint:
    def _checkpoint_path(self, harvest_path):
        return harvest_path.with_name(harvest_path.name + ".checkpoint")

    def test_resume_skips_completed_shards(self, harvest):
        path, _ = harvest
        engine = PipelineEngine(workers=2, shard_size=6)
        first = analyze_harvest_names(path, engine, checkpoint=True)
        sidecar = self._checkpoint_path(path)
        assert sidecar.exists()
        lines = sidecar.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1 + 4  # header + ceil(20 / 6) shards
        resumed = analyze_harvest_names(path, engine, checkpoint=True)
        assert resumed == first
        # No shard was re-recorded on resume.
        assert len(sidecar.read_text(encoding="utf-8").splitlines()) == len(lines)

    def test_corrupted_checkpoint_raises(self, harvest):
        path, _ = harvest
        engine = PipelineEngine(workers=2, shard_size=6)
        analyze_harvest_names(path, engine, checkpoint=True)
        sidecar = self._checkpoint_path(path)
        text = sidecar.read_text(encoding="utf-8")
        sidecar.write_text(text[:-15] + "{garbled\n", encoding="utf-8")
        with pytest.raises(LogStorageError, match="corrupted shard checkpoint"):
            analyze_harvest_names(path, engine, checkpoint=True)

    def test_mismatched_shard_plan_rejected(self, harvest):
        path, _ = harvest
        analyze_harvest_names(
            path, PipelineEngine(workers=1, shard_size=6), checkpoint=True
        )
        with pytest.raises(LogStorageError, match="does not match"):
            analyze_harvest_names(
                path, PipelineEngine(workers=1, shard_size=9), checkpoint=True
            )

    def test_rewritten_harvest_invalidates_checkpoint(self, harvest, ca, now):
        path, log = harvest
        engine = PipelineEngine(workers=1, shard_size=6)
        analyze_harvest_names(path, engine, checkpoint=True)
        # Re-harvest with one more entry: same sidecar, different head.
        ca.issue(IssuanceRequest(("extra.example.org",)), [log], now)
        dump_log(log, path)
        with pytest.raises(LogStorageError, match="does not match"):
            analyze_harvest_names(path, engine, checkpoint=True)

    def test_malformed_shard_record_rejected(self, harvest):
        path, _ = harvest
        checkpoint = HarvestCheckpoint.for_harvest(path, FQDN_LEAKAGE_PASS, 6)
        checkpoint.record(0, {"total": 1, "invalid": 0, "candidates": []})
        with checkpoint.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "shard"}) + "\n")
        with pytest.raises(LogStorageError, match="malformed shard record"):
            checkpoint.completed()

    def test_clear_removes_sidecar(self, harvest):
        path, _ = harvest
        checkpoint = HarvestCheckpoint.for_harvest(path, FQDN_LEAKAGE_PASS, 6)
        checkpoint.record(0, None)
        assert checkpoint.path.exists()
        checkpoint.clear()
        assert not checkpoint.path.exists()
        assert checkpoint.completed() == {}


class TestCheckpointFaultAccounting:
    def _fresh(self, harvest):
        path, _ = harvest
        return HarvestCheckpoint.for_harvest(path, FQDN_LEAKAGE_PASS, 6)

    def test_duplicate_record_is_a_noop_first_wins(self, harvest):
        checkpoint = self._fresh(harvest)
        checkpoint.record(0, {"v": "first"})
        checkpoint.record(0, {"v": "second"})
        assert checkpoint.completed() == {0: {"v": "first"}}
        lines = checkpoint.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2  # header + one shard record

    def test_duplicate_survives_reload(self, harvest):
        checkpoint = self._fresh(harvest)
        checkpoint.record(1, {"v": "first"})
        reopened = self._fresh(harvest)
        reopened.record(1, {"v": "second"})
        assert reopened.completed() == {1: {"v": "first"}}

    def test_attempts_recorded_and_aggregated(self, harvest):
        checkpoint = self._fresh(harvest)
        checkpoint.record(0, {"v": 0})
        checkpoint.record(1, {"v": 1}, attempts=3)
        checkpoint.record(2, {"v": 2}, attempts=2)
        stats = checkpoint.fault_stats()
        assert stats["shards"] == 3
        assert stats["retried_shards"] == 2
        assert stats["total_attempts"] == 6

    def test_degraded_marker_round_trips(self, harvest):
        class Report:
            failed_indices = [2, 3]
            retries = 5

        checkpoint = self._fresh(harvest)
        checkpoint.record(0, {"v": 0})
        checkpoint.record_degraded(Report())
        # Degraded markers never masquerade as completed shards.
        assert set(checkpoint.completed()) == {0}
        stats = checkpoint.fault_stats()
        assert stats["degraded_runs"] == 1
        assert stats["degraded_indices"] == [2, 3]
        assert stats["degraded_retries"] == 5

    def test_degraded_engine_run_writes_marker(self, harvest):
        path, _ = harvest

        def fail_shard_two(payload):
            _, start, _ = payload
            if start == 12:  # shard 2 at shard_size=6
                raise RuntimeError("lost shard")
            return harvest_entry_names(*payload)

        from repro.resilience import RetryPolicy, TransientLogError

        checkpoint = self._fresh(harvest)
        engine = PipelineEngine(
            workers=1,
            shard_size=6,
            retry=RetryPolicy(
                max_attempts=2,
                base_delay_s=0.0,
                retryable=(TransientLogError,),
            ),
            on_error="degrade",
        )
        from repro.pipeline.shard import plan_sequence_shards

        shards = plan_sequence_shards(20, 6, source=str(path))
        tasks = [(str(path), s.start, s.stop) for s in shards]
        result = engine.map(fail_shard_two, tasks, checkpoint=checkpoint)
        assert result.degradation.failed_indices == [2]
        stats = checkpoint.fault_stats()
        assert stats["shards"] == 3
        assert stats["degraded_runs"] == 1
        assert stats["degraded_indices"] == [2]
