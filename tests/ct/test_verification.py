"""Tests for embedded-SCT validation and root-cause diagnosis."""

import pytest

from repro.ct.verification import (
    diagnose_mismatch,
    validate_embedded_scts,
)
from repro.x509.ca import IssuanceBug, IssuanceRequest


def maps(logs):
    return (
        {log.log_id: log.key for log in logs.values()},
        {log.log_id: log.name for log in logs.values()},
    )


def test_valid_certificate_passes(ca, fresh_logs, issued_pair):
    keys, names = maps(fresh_logs)
    result = validate_embedded_scts(
        issued_pair.final_certificate, ca.issuer_key_hash, keys, names
    )
    assert result.all_valid
    assert not result.any_invalid
    assert result.invalid_count == 0
    assert [v.log_name for v in result.verdicts] == [
        "Google Pilot log", "Google Icarus log",
    ]


def test_wrong_issuer_key_hash_fails(fresh_logs, issued_pair):
    keys, names = maps(fresh_logs)
    result = validate_embedded_scts(
        issued_pair.final_certificate, b"\x00" * 32, keys, names
    )
    assert result.any_invalid
    assert result.invalid_count == 2


def test_unknown_log_reported(ca, issued_pair):
    result = validate_embedded_scts(
        issued_pair.final_certificate, ca.issuer_key_hash, {}, {}
    )
    assert result.any_invalid
    assert all(v.reason == "unknown log id" for v in result.verdicts)


def test_cert_without_scts_has_no_verdicts(ca, now):
    pair = ca.issue(IssuanceRequest(("n.example",), embed_scts=False), [], now)
    result = validate_embedded_scts(pair.final_certificate, ca.issuer_key_hash, {}, {})
    assert result.verdicts == ()
    assert result.all_valid


def test_precertificate_rejected(ca, fresh_logs, issued_pair):
    keys, names = maps(fresh_logs)
    with pytest.raises(ValueError):
        validate_embedded_scts(
            issued_pair.precertificate, ca.issuer_key_hash, keys, names
        )


class TestDiagnosis:
    def test_clean_pair_has_no_reasons(self, issued_pair):
        assert diagnose_mismatch(
            issued_pair.precertificate, issued_pair.final_certificate
        ) == []

    def test_san_reorder_diagnosed(self, ca, fresh_logs, now):
        pair = ca.issue(
            IssuanceRequest(("d1.example",), ip_addresses=("192.0.2.1",)),
            [fresh_logs["Google Pilot log"]], now, bug=IssuanceBug.SAN_REORDER,
        )
        reasons = diagnose_mismatch(pair.precertificate, pair.final_certificate)
        assert reasons == ["SAN entry order changed in the final certificate"]

    def test_extension_reorder_diagnosed(self, ca, fresh_logs, now):
        pair = ca.issue(
            IssuanceRequest(("d2.example",)),
            [fresh_logs["Google Pilot log"]], now,
            bug=IssuanceBug.EXTENSION_REORDER,
        )
        reasons = diagnose_mismatch(pair.precertificate, pair.final_certificate)
        assert "X.509 extension order changed in the final certificate" in reasons

    def test_san_swap_diagnosed(self, ca, fresh_logs, now):
        pair = ca.issue(
            IssuanceRequest(("d3.example",)),
            [fresh_logs["Google Pilot log"]], now, bug=IssuanceBug.SAN_SWAP,
        )
        reasons = diagnose_mismatch(pair.precertificate, pair.final_certificate)
        assert any("differ entirely" in reason for reason in reasons)
        assert any("issuer names differ" in reason for reason in reasons)

    def test_serial_mismatch_diagnosed(self, ca, fresh_logs, now):
        a = ca.issue(IssuanceRequest(("s1.example",)), [fresh_logs["Google Pilot log"]], now)
        b = ca.issue(IssuanceRequest(("s1.example",)), [fresh_logs["Google Pilot log"]], now)
        reasons = diagnose_mismatch(a.precertificate, b.final_certificate)
        assert any("serial" in reason for reason in reasons)
