"""Columnar corpus: construction, views, pickling, harvest streaming."""

import json
import pickle
from datetime import date

import pytest

from repro.core import evolution
from repro.ct.storage import dump_log
from repro.dataset import CertCorpus, CertRecord
from repro.obs import MetricsRegistry
from repro.workloads.ca_profiles import CaLoggingWorkload


@pytest.fixture(scope="module")
def logs():
    run = CaLoggingWorkload(scale=2e-6, end=date(2018, 4, 30), seed=7).run()
    return run.logs


@pytest.fixture(scope="module")
def corpus(logs):
    return CertCorpus.from_logs(logs)


class TestFromLogs:
    def test_one_row_per_log_entry(self, logs, corpus):
        assert len(corpus) == sum(len(log.entries) for log in logs.values())
        for column in (
            corpus.issuer_org,
            corpus.serial,
            corpus.day,
            corpus.log_name,
            corpus.month,
            corpus.is_precert,
            corpus.names,
        ):
            assert len(column) == len(corpus)

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            CertCorpus(("a",), (1, 2), (), (), (), (), ())

    def test_precert_rows_equal_growth_records(self, logs, corpus):
        """Scan order matches the serial reference iteration exactly."""
        rows = [
            (r.issuer_org, r.serial, r.day)
            for r in corpus.iter_records()
            if r.is_precert
        ]
        assert rows == list(evolution.growth_records(logs.values()))

    def test_precert_rows_equal_matrix_records(self, logs, corpus):
        rows = [
            (r.issuer_org, r.log_name, r.month)
            for r in corpus.iter_records()
            if r.is_precert
        ]
        assert rows == list(evolution.matrix_records(logs.values()))

    def test_record_assembles_the_same_row(self, corpus):
        records = list(corpus.iter_records())
        for index in (0, len(corpus) // 2, len(corpus) - 1):
            assert corpus.record(index) == records[index]
            assert isinstance(records[index], CertRecord)

    def test_names_column_carries_dns_names(self, logs, corpus):
        expected = [
            tuple(entry.certificate.dns_names())
            for log in logs.values()
            for entry in log.entries
        ]
        assert list(corpus.names) == expected

    def test_with_names_false_drops_the_names_column(self, logs, corpus):
        lean = CertCorpus.from_logs(logs, with_names=False)
        assert len(lean) == len(corpus)
        assert all(names == () for names in lean.names)
        assert lean.approx_bytes() < corpus.approx_bytes()

    def test_same_month_cells_share_one_string_object(self, corpus):
        first_seen = {}
        for cell in corpus.month:
            assert cell is first_seen.setdefault(cell, cell)

    def test_build_metrics_recorded(self, logs):
        metrics = MetricsRegistry()
        built = CertCorpus.from_logs(logs, metrics=metrics)
        snap = metrics.snapshot()
        assert snap.gauge("dataset.corpus_records") == len(built)
        assert snap.gauge("dataset.bytes_per_record") > 0
        assert snap.histogram_count("dataset.corpus_build_seconds") == 1


class TestApproxBytes:
    def test_shared_cells_counted_once(self):
        shared = "Example CA"
        dense = CertCorpus(
            (shared,) * 64,
            tuple(range(64)),
            (date(2018, 4, 1),) * 64,
            ("log",) * 64,
            ("2018-04",) * 64,
            (True,) * 64,
            ((),) * 64,
        )
        distinct = CertCorpus(
            tuple(f"Example CA {i:04d}" for i in range(64)),
            tuple(range(64)),
            (date(2018, 4, 1),) * 64,
            ("log",) * 64,
            ("2018-04",) * 64,
            (True,) * 64,
            ((),) * 64,
        )
        assert dense.approx_bytes() < distinct.approx_bytes()


class TestCorpusView:
    def test_full_view_by_default(self, corpus):
        view = corpus.view()
        assert len(view) == len(corpus)
        assert list(view.iter_records()) == list(corpus.iter_records())

    def test_window_sees_only_its_slice(self, corpus):
        records = list(corpus.iter_records())
        view = corpus.view(5, 17)
        assert len(view) == 12
        assert list(view.iter_records()) == records[5:17]

    @pytest.mark.parametrize("start,stop", [(-1, 4), (4, 2), (0, 10**9)])
    def test_invalid_ranges_rejected(self, corpus, start, stop):
        with pytest.raises(ValueError, match="invalid view range"):
            corpus.view(start, stop)

    def test_materialize_is_a_standalone_corpus(self, corpus):
        sliced = corpus.view(3, 9).materialize()
        assert isinstance(sliced, CertCorpus)
        assert len(sliced) == 6
        assert list(sliced.iter_records()) == list(
            corpus.view(3, 9).iter_records()
        )

    def test_pickles_only_the_slice(self, corpus):
        """Shard payload size is proportional to the shard, not the corpus."""
        assert len(corpus) > 64
        small = pickle.dumps(corpus.view(0, 8))
        full = pickle.dumps(corpus.view())
        assert len(small) * 4 < len(full)

    def test_pickle_roundtrip_preserves_records(self, corpus):
        view = corpus.view(10, 30)
        loaded = pickle.loads(pickle.dumps(view))
        assert list(loaded.iter_records()) == list(view.iter_records())


class TestFromStored:
    @pytest.fixture()
    def one_log(self, logs):
        name = next(iter(logs))
        return name, logs[name]

    @pytest.fixture()
    def harvest(self, one_log, tmp_path):
        name, log = one_log
        path = tmp_path / "harvest.jsonl"
        dump_log(log, path)
        return path

    def test_streams_the_same_rows_as_from_logs(self, one_log, harvest):
        name, log = one_log
        streamed = CertCorpus.from_stored(harvest)
        in_memory = CertCorpus.from_logs([log])
        assert list(streamed.iter_records()) == list(in_memory.iter_records())

    def test_log_name_column_comes_from_the_trailer(self, one_log, harvest):
        _, log = one_log
        streamed = CertCorpus.from_stored(harvest)
        assert set(streamed.log_name) == {log.name}

    def test_duplicate_entries_dropped_first_wins(self, harvest):
        lines = harvest.read_text().splitlines()
        entry_lines = [
            line for line in lines if json.loads(line)["type"] == "entry"
        ]
        # Re-append a copy of the first two entries before the trailer.
        lines[-1:-1] = entry_lines[:2]
        harvest.write_text("\n".join(lines) + "\n")
        metrics = MetricsRegistry()
        streamed = CertCorpus.from_stored(harvest, metrics=metrics)
        assert len(streamed) == len(entry_lines)
        assert (
            metrics.snapshot().counter("dataset.duplicate_entries_skipped")
            == 2
        )

    def test_truncated_trailing_line_skipped_with_counter(self, harvest):
        reference = CertCorpus.from_stored(harvest)
        with harvest.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "entry", "index": 99')  # torn write
        metrics = MetricsRegistry()
        streamed = CertCorpus.from_stored(harvest, metrics=metrics)
        assert list(streamed.iter_records()) == list(reference.iter_records())
        assert (
            metrics.snapshot().counter("storage.corrupt_lines_skipped") == 1
        )

    def test_empty_file_builds_an_empty_corpus(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        streamed = CertCorpus.from_stored(path)
        assert len(streamed) == 0
        assert list(streamed.iter_records()) == []


class TestAppend:
    def test_empty_constructor(self):
        corpus = CertCorpus.empty()
        assert len(corpus) == 0
        assert list(corpus.iter_records()) == []
        assert corpus.view().stop == 0

    def test_append_row_returns_index_and_round_trips(self):
        corpus = CertCorpus.empty()
        index = corpus.append_row(
            issuer_org="Row CA",
            serial=77,
            day=date(2018, 4, 3),
            log_name="row-log",
            is_precert=True,
            names=("a.example",),
        )
        assert index == 0
        assert corpus.append_row(
            issuer_org="Row CA",
            serial=78,
            day=date(2018, 4, 4),
            log_name="row-log",
            is_precert=False,
        ) == 1
        assert len(corpus) == 2
        assert corpus.record(0) == CertRecord(
            "Row CA", 77, date(2018, 4, 3), "row-log", "2018-04",
            True, ("a.example",),
        )
        assert corpus.record(1).names == ()

    def test_appended_rows_intern_against_existing_values(self):
        corpus = CertCorpus.empty()
        corpus.append_row(
            issuer_org="Shared CA", serial=1, day=date(2018, 4, 1),
            log_name="log", is_precert=True,
        )
        corpus.append_row(
            issuer_org="Shared CA", serial=2, day=date(2018, 4, 28),
            log_name="log", is_precert=True,
        )
        assert corpus.issuer_org[0] is corpus.issuer_org[1]
        assert corpus.log_name[0] is corpus.log_name[1]
        # Same calendar month, different day: one shared month string.
        assert corpus.month[0] is corpus.month[1]

    def test_append_entries_matches_from_logs(self, logs):
        incremental = CertCorpus.empty()
        for log in logs.values():
            delta = incremental.append_entries(log.name, log.entries)
            assert len(delta) == len(log.entries)
        reference = CertCorpus.from_logs(logs)
        assert list(incremental.iter_records()) == list(
            reference.iter_records()
        )

    def test_append_entries_delta_covers_exactly_the_new_rows(self, logs):
        corpus = CertCorpus.empty()
        previous_stop = 0
        for log in logs.values():
            delta = corpus.append_entries(log.name, log.entries)
            assert delta.start == previous_stop  # gapless coverage
            assert delta.stop == len(corpus)
            assert list(delta.iter_records()) == list(
                corpus.iter_range(delta.start, delta.stop)
            )
            previous_stop = delta.stop

    def test_append_batch_accepts_pairs_and_event_like_items(self, logs):
        name, log = next(iter(logs.items()))
        pairs = [(log.name, entry) for entry in log.entries[:4]]

        class EventLike:
            def __init__(self, log_name, entry):
                self.log_name = log_name
                self.entry = entry

        events = [EventLike(log.name, entry) for entry in log.entries[4:8]]
        corpus = CertCorpus.empty()
        first = corpus.append_batch(pairs)
        second = corpus.append_batch(events)
        assert (first.start, first.stop) == (0, len(pairs))
        assert (second.start, second.stop) == (
            len(pairs), len(pairs) + len(events),
        )
        reference = CertCorpus.empty()
        reference.append_entries(log.name, log.entries[:8])
        assert list(corpus.iter_records()) == list(reference.iter_records())

    def test_append_batch_with_names_false_drops_names(self, logs):
        name, log = next(iter(logs.items()))
        corpus = CertCorpus.empty()
        corpus.append_batch(
            [(log.name, entry) for entry in log.entries[:3]],
            with_names=False,
        )
        assert all(names == () for names in corpus.names)

    def test_serial_overflow_beyond_64_bits_round_trips(self):
        huge = 2**127 + 5
        corpus = CertCorpus.empty()
        corpus.append_row(
            issuer_org="Big CA", serial=huge, day=date(2018, 4, 1),
            log_name="log", is_precert=True,
        )
        corpus.append_row(
            issuer_org="Big CA", serial=9, day=date(2018, 4, 1),
            log_name="log", is_precert=True,
        )
        assert corpus.serial[0] == huge
        assert corpus.serial[1] == 9
        assert list(corpus.serial) == [huge, 9]
        assert corpus.serial[:] == (huge, 9)
        assert [r.serial for r in corpus.iter_records()] == [huge, 9]
        loaded = pickle.loads(pickle.dumps(corpus))
        assert list(loaded.serial) == [huge, 9]

    def test_open_iterators_and_views_survive_appends(self, logs):
        """Appending must never raise BufferError under live readers."""
        name, log = next(iter(logs.items()))
        corpus = CertCorpus.empty()
        corpus.append_entries(log.name, log.entries[:5])
        view = corpus.view(0, 5)
        iterator = corpus.iter_records()
        next(iterator)
        column_iter = iter(corpus.issuer_org)
        next(column_iter)
        delta = corpus.append_entries(log.name, log.entries[5:8])
        assert len(delta) == 3
        assert len(view) == 5  # existing rows never move
        assert list(view.iter_records()) == list(corpus.iter_range(0, 5))

    def test_columns_compare_equal_to_plain_sequences(self, corpus):
        """Tuple-column parity: ``==`` is element-wise both ways."""
        for column in ("issuer_org", "serial", "day", "log_name", "month",
                       "is_precert"):
            values = getattr(corpus, column)
            assert values == values[:]
            assert values[:] == values
            assert values == list(values)
            assert not values == tuple(values)[:-1]

    def test_appended_corpus_pickle_round_trips(self, logs):
        corpus = CertCorpus.empty()
        for log in logs.values():
            corpus.append_entries(log.name, log.entries)
        loaded = pickle.loads(pickle.dumps(corpus))
        assert list(loaded.iter_records()) == list(corpus.iter_records())
