"""Fused traversal == per-section references, serial and pooled.

The tentpole acceptance bar: every pass registered on the graph comes
out bit-identical to its standalone per-section scan, from the same
corpus, whether the engine runs inline or on a process/thread pool —
and the obs counters prove each shard was walked exactly once for all
passes together.
"""

import os
import pickle
from datetime import date

import pytest

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, evolution, leakage
from repro.ct.storage import dump_log
from repro.dataset import (
    CertCorpus,
    PassGraph,
    adoption_extractor,
    adoption_pass,
    analyze_corpus,
    analyze_records,
    leakage_name_extractor,
    leakage_pass,
    section2_graph,
    sections_graph,
)
from repro.obs import MetricsRegistry
from repro.pipeline import (
    PipelineEngine,
    analyze_harvest_sections,
    evolution_sections,
)
from repro.pipeline.shard import plan_sequence_shards
from repro.workloads.ca_profiles import CaLoggingWorkload
from repro.workloads.traffic import UplinkTrafficWorkload

EXECUTORS = (
    [os.environ["REPRO_EXECUTOR"]]
    if os.environ.get("REPRO_EXECUTOR")
    else ["process", "thread"]
)


@pytest.fixture(scope="module")
def logs():
    run = CaLoggingWorkload(scale=2e-6, end=date(2018, 4, 30), seed=7).run()
    return run.logs


@pytest.fixture(scope="module")
def corpus(logs):
    return CertCorpus.from_logs(logs)


@pytest.fixture(scope="module")
def reference(logs):
    """Per-section results from the independent reference algebra."""
    records = list(evolution.growth_records(logs.values()))
    firsts = evolution.growth_map(records)
    names = [
        name
        for log in logs.values()
        for entry in log.entries
        for name in entry.certificate.dns_names()
    ]
    return {
        "growth": evolution.growth_reduce([firsts]),
        "rates": evolution.rates_reduce([firsts]),
        "matrix": evolution.matrix_map(
            list(evolution.matrix_records(logs.values())), "2018-04"
        ),
        "leakage": leakage.analyze_names(names),
    }


def _assert_sections_match(result, reference):
    assert result["growth"] == reference["growth"]
    assert list(result["growth"]) == list(reference["growth"])
    assert result["rates"] == reference["rates"]
    assert result["matrix"].cells() == reference["matrix"].cells()
    assert result["matrix"].rows() == reference["matrix"].rows()
    assert result["matrix"].cols() == reference["matrix"].cols()
    assert result["leakage"] == reference["leakage"]
    assert (
        result["leakage"].top_labels(10) == reference["leakage"].top_labels(10)
    )


class TestFusedEqualsReference:
    def test_serial_single_traversal(self, corpus, reference):
        result = analyze_corpus(
            corpus, sections_graph(), PipelineEngine(workers=1)
        )
        _assert_sections_match(result, reference)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_pooled_matches_serial_bit_for_bit(
        self, corpus, reference, executor
    ):
        engine = PipelineEngine(workers=3, shard_size=512, executor=executor)
        result = analyze_corpus(corpus, sections_graph(), engine)
        _assert_sections_match(result, reference)

    def test_date_window_passes_through(self, logs, corpus):
        window = dict(start=date(2017, 1, 1), end=date(2018, 3, 31))
        engine = PipelineEngine(workers=3, shard_size=512)
        result = analyze_corpus(
            corpus, section2_graph(start=window["start"], end=window["end"]),
            engine,
        )
        assert result["growth"] == evolution.cumulative_precert_growth(
            logs, **window
        )


class TestTraversalAccounting:
    def test_each_shard_traversed_exactly_once(self, corpus):
        """However many passes are fused, shard traversals == shards."""
        metrics = MetricsRegistry()
        engine = PipelineEngine(
            workers=3, shard_size=512, executor="thread", metrics=metrics
        )
        graph = sections_graph()
        assert graph.traversals_fused() == 4
        analyze_corpus(corpus, graph, engine)
        shards = len(plan_sequence_shards(len(corpus), 512, "corpus"))
        snap = metrics.snapshot()
        assert snap.counter("dataset.shard_traversals") == shards
        assert snap.counter("dataset.records_scanned") == len(corpus)
        assert (
            snap.counter("dataset.separate_traversals_avoided")
            == 3 * shards
        )

    def test_serial_run_is_one_traversal(self, corpus):
        metrics = MetricsRegistry()
        engine = PipelineEngine(workers=1, metrics=metrics)
        analyze_corpus(corpus, sections_graph(), engine)
        snap = metrics.snapshot()
        assert snap.counter("dataset.shard_traversals") == 1
        assert snap.counter("dataset.records_scanned") == len(corpus)


class TestEvolutionSectionsDriver:
    def test_matches_single_pass_drivers(self, logs):
        engine = PipelineEngine(workers=3, shard_size=512, executor="thread")
        fused = evolution_sections(logs, "2018-04", engine)
        assert fused["growth"] == evolution.cumulative_precert_growth(logs)
        assert fused["rates"] == evolution.relative_daily_rates(logs)
        assert (
            fused["matrix"].cells()
            == evolution.ca_log_matrix(logs, "2018-04").cells()
        )


class TestAnalyzeRecords:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_fqdn_stream_equals_serial_leakage(self, corpus, executor):
        names = [name for row in corpus.names for name in row]
        graph = PassGraph().add_extractor(leakage_name_extractor())
        graph.add_pass(leakage_pass())
        engine = PipelineEngine(workers=3, shard_size=256, executor=executor)
        result = analyze_records(names, graph, engine, source="fqdns")
        assert result["leakage"] == leakage.analyze_names(names)


class TestAdoptionPayloadIsPlainData:
    """Satellite: shard payloads carry AnalyzerConfig, not the analyzer."""

    def test_graph_pickles_without_an_analyzer(self):
        workload = UplinkTrafficWorkload(connections_per_day=60, seed=42)
        analyzer = BroSctAnalyzer(workload.logs)
        graph = PassGraph().add_extractor(
            adoption_extractor(analyzer.config())
        )
        graph.add_pass(adoption_pass())
        payload = pickle.dumps(graph)
        assert b"BroSctAnalyzer" not in payload

    def test_rebuilt_analyzer_observes_identically(self):
        workload = UplinkTrafficWorkload(connections_per_day=40, seed=9)
        analyzer = BroSctAnalyzer(workload.logs)
        rebuilt = BroSctAnalyzer.from_config(analyzer.config())
        connections = list(workload.stream())
        serial = adoption.aggregate(analyzer.analyze_stream(connections))
        assert (
            adoption.aggregate(rebuilt.analyze_stream(connections)) == serial
        )


class TestHarvestSections:
    def test_streamed_harvest_matches_in_memory_fused(self, logs, tmp_path):
        name = next(iter(logs))
        path = tmp_path / "harvest.jsonl"
        dump_log(logs[name], path)
        engine = PipelineEngine(workers=3, shard_size=256, executor="thread")
        streamed = analyze_harvest_sections(path, engine)
        in_memory = analyze_corpus(
            CertCorpus.from_logs([logs[name]]), sections_graph(), engine
        )
        assert streamed["growth"] == in_memory["growth"]
        assert streamed["rates"] == in_memory["rates"]
        assert streamed["matrix"].cells() == in_memory["matrix"].cells()
        assert streamed["leakage"] == in_memory["leakage"]
