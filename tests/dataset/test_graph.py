"""PassGraph semantics: registration, fusion, single-traversal folds."""

import pytest

from repro.dataset import Extractor, PassGraph, SectionPass


def _count_init():
    return {"n": 0}


def _count_fold(state, record):
    state["n"] += record


def _count_finalize(state):
    return state["n"]


def _sum_reduce(partials):
    return sum(partials)


def _counting_graph():
    graph = PassGraph().add_extractor(
        Extractor("count", _count_init, _count_fold, _count_finalize)
    )
    graph.add_pass(SectionPass("total", "count", _sum_reduce))
    return graph


class TestRegistration:
    def test_duplicate_extractor_rejected(self):
        graph = _counting_graph()
        with pytest.raises(ValueError, match="duplicate extractor"):
            graph.add_extractor(
                Extractor("count", _count_init, _count_fold)
            )

    def test_duplicate_pass_rejected(self):
        graph = _counting_graph()
        with pytest.raises(ValueError, match="duplicate pass"):
            graph.add_pass(SectionPass("total", "count", _sum_reduce))

    def test_pass_must_reference_a_registered_extractor(self):
        graph = PassGraph()
        with pytest.raises(ValueError, match="unknown extractor"):
            graph.add_pass(SectionPass("total", "missing", _sum_reduce))

    def test_empty_graph_refuses_to_run(self):
        with pytest.raises(ValueError, match="no extractors"):
            PassGraph().run_shard([1, 2])
        graph = PassGraph().add_extractor(
            Extractor("count", _count_init, _count_fold)
        )
        with pytest.raises(ValueError, match="no passes"):
            graph.reduce([graph.run_shard([1]).partials])

    def test_pass_names_in_registration_order(self):
        graph = _counting_graph()
        graph.add_pass(SectionPass("max", "count", max))
        assert graph.pass_names == ("total", "max")
        assert graph.traversals_fused() == 2


class TestExecution:
    def test_run_shard_counts_records_and_one_traversal(self):
        result = _counting_graph().run_shard([1, 2, 3, 4])
        assert result.partials == {"count": 10}
        assert result.records == 4
        assert result.traversals == 1

    def test_reduce_merges_in_shard_order(self):
        graph = _counting_graph()
        shards = [graph.run_shard(chunk).partials for chunk in ([1, 2], [3], [])]
        assert graph.reduce(shards) == {"total": 6}

    def test_run_is_the_single_shard_special_case(self):
        graph = _counting_graph()
        assert graph.run([1, 2, 3]) == {"total": 6}

    def test_passes_share_an_extractor_state(self):
        graph = _counting_graph()
        graph.add_pass(SectionPass("echo", "count", list))
        result = graph.run([5, 7])
        assert result == {"total": 12, "echo": [12]}

    def test_each_record_folds_once_per_extractor(self):
        """The fusion invariant: N passes never mean N record loops."""
        touches = []

        def spy_fold(state, record):
            touches.append(record)

        graph = PassGraph().add_extractor(
            Extractor("spy", list, spy_fold)
        )
        graph.add_pass(SectionPass("a", "spy", len))
        graph.add_pass(SectionPass("b", "spy", len))
        graph.add_pass(SectionPass("c", "spy", len))
        graph.run_shard(["r0", "r1", "r2"])
        assert touches == ["r0", "r1", "r2"]

    def test_finalize_transforms_the_shipped_partial(self):
        graph = PassGraph().add_extractor(
            Extractor("count", _count_init, _count_fold, _count_finalize)
        )
        result = graph.run_shard([4, 5])
        assert result.partials == {"count": 9}  # the int, not the dict
