"""Streaming incremental analytics: fold-by-fold equals batch."""

import json
from datetime import date, timedelta

import pytest

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.dataset import (
    ANALYTICS_SCHEMA_VERSION,
    CertCorpus,
    LiveAnalytics,
)
from repro.dataset.sections import section2_graph, sections_graph
from repro.obs import MetricsRegistry
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 4, 2, 9, 0)
MONTH = "2018-04"


@pytest.fixture()
def world():
    logs = [
        CTLog(name=f"Live Log {i}", operator="T", key=log_key(f"live:{i}", 256))
        for i in range(3)
    ]
    cas = [CertificateAuthority(f"Live CA {i}", key_bits=256) for i in range(2)]
    return logs, cas


def _issue_rounds(logs, cas, rounds=5):
    """Deterministic issuance; returns per-round issue counts."""
    for round_no in range(rounds):
        when = NOW + timedelta(days=round_no)
        for c, ca in enumerate(cas):
            for n in range(c + 1):
                ca.issue(
                    IssuanceRequest((f"r{round_no}c{c}n{n}.example",)),
                    [logs[(round_no + c + n) % len(logs)]],
                    when,
                )
        yield when


def _assert_sections_equal(live_results, batch_results):
    assert live_results["growth"] == batch_results["growth"]
    assert live_results["rates"] == batch_results["rates"]
    assert live_results["matrix"].cells() == batch_results["matrix"].cells()
    assert live_results["matrix"].rows() == batch_results["matrix"].rows()
    assert live_results["matrix"].cols() == batch_results["matrix"].cols()


# -- PassGraph incremental mode ----------------------------------------------


def test_graph_incremental_mode_equals_run_shard(world):
    logs, cas = world
    list(_issue_rounds(logs, cas))
    corpus = CertCorpus.from_logs(logs)
    graph = section2_graph(MONTH)

    states = graph.new_states()
    total = 0
    for start in range(0, len(corpus), 4):
        total += graph.fold_into(
            states, corpus.iter_range(start, min(start + 4, len(corpus)))
        )
    incremental = graph.results_from_states(states)
    batch = graph.run(corpus.iter_records())
    assert total == len(corpus)
    _assert_sections_equal(incremental, batch)


def test_results_from_states_is_repeatable_and_non_destructive(world):
    logs, cas = world
    list(_issue_rounds(logs, cas, rounds=3))
    corpus = CertCorpus.from_logs(logs)
    graph = section2_graph(MONTH)
    states = graph.new_states()
    graph.fold_into(states, corpus.iter_range(0, len(corpus) // 2))
    early = graph.results_from_states(states)
    again = graph.results_from_states(states)
    assert early["growth"] == again["growth"]
    assert early["matrix"].cells() == again["matrix"].cells()
    # Reading mid-stream must not corrupt the continuing fold.
    graph.fold_into(states, corpus.iter_range(len(corpus) // 2, len(corpus)))
    _assert_sections_equal(
        graph.results_from_states(states), graph.run(corpus.iter_records())
    )


def test_empty_graph_has_no_states():
    from repro.dataset.graph import PassGraph

    with pytest.raises(ValueError, match="no extractors"):
        PassGraph().new_states()


# -- LiveAnalytics fold entry points -----------------------------------------


def test_fold_events_from_feed_polls_equals_batch(world):
    logs, cas = world
    live = LiveAnalytics(section2_graph(MONTH))
    feed = CertFeed(logs, analytics=live)
    polls = 0
    for when in _issue_rounds(logs, cas):
        feed.poll(when)
        polls += 1
    corpus = CertCorpus.from_logs(logs, with_names=False)
    assert live.records_folded == len(corpus)
    assert live.batches_folded == polls
    _assert_sections_equal(
        live.results(), section2_graph(MONTH).run(corpus.iter_records())
    )


def test_fold_entries_and_fold_delta_agree_with_fold_events(world):
    logs, cas = world
    list(_issue_rounds(logs, cas))

    by_events = LiveAnalytics(section2_graph(MONTH))
    feed = CertFeed([], analytics=by_events)  # fold_events directly
    from repro.ct.feed import FeedEvent

    by_events.fold_events(
        FeedEvent(log.name, entry, entry.submitted_at)
        for log in logs
        for entry in log.entries
    )

    by_entries = LiveAnalytics(section2_graph(MONTH))
    for log in logs:
        by_entries.fold_entries(log.name, log.entries)

    by_delta = LiveAnalytics(section2_graph(MONTH))
    corpus = CertCorpus.empty()
    for log in logs:
        by_delta.fold_delta(corpus.append_entries(log.name, log.entries))

    reference = by_events.to_dict()["sections"]
    assert by_entries.to_dict()["sections"] == reference
    assert by_delta.to_dict()["sections"] == reference
    assert feed.analytics is by_events


def test_default_graph_is_section2(world):
    logs, cas = world
    list(_issue_rounds(logs, cas, rounds=2))
    live = LiveAnalytics()
    for log in logs:
        live.fold_entries(log.name, log.entries)
    assert set(live.results()) == {"growth", "rates", "matrix"}


def test_metrics_counters(world):
    logs, cas = world
    list(_issue_rounds(logs, cas, rounds=2))
    metrics = MetricsRegistry()
    live = LiveAnalytics(section2_graph(MONTH), metrics=metrics)
    for log in logs:
        live.fold_entries(log.name, log.entries)
    snap = metrics.snapshot()
    assert snap.counter("dataset.live_batches") == len(logs)
    assert snap.counter("dataset.live_records") == live.records_folded


# -- the version-1 snapshot ---------------------------------------------------


def test_to_dict_schema_and_json_round_trip(world):
    logs, cas = world
    live = LiveAnalytics(section2_graph(MONTH))
    feed = CertFeed(logs, analytics=live)
    for when in _issue_rounds(logs, cas):
        feed.poll(when)
    snapshot = live.to_dict()
    assert snapshot["version"] == ANALYTICS_SCHEMA_VERSION == 1
    assert snapshot["records_folded"] == live.records_folded > 0
    assert snapshot["batches_folded"] == live.batches_folded
    assert set(snapshot["sections"]) == {"growth", "rates", "matrix"}

    # Plain JSON types throughout (the /analytics body).
    encoded = json.dumps(snapshot, sort_keys=True)
    assert json.loads(encoded) == snapshot

    growth = snapshot["sections"]["growth"]
    assert sorted(growth) == list(growth)  # CAs sorted
    for points in growth.values():
        days = [day for day, _ in points]
        assert days == sorted(days)
        for day, count in points:
            assert date.fromisoformat(day)
            assert isinstance(count, int)
        counts = [count for _, count in points]
        assert counts == sorted(counts)  # cumulative

    rates = snapshot["sections"]["rates"]
    assert list(rates) == sorted(rates)
    for shares in rates.values():
        assert all(0.0 <= share <= 1.0 for share in shares.values())

    matrix = snapshot["sections"]["matrix"]
    assert set(matrix) == {"rows", "cols", "cells"}
    assert sum(cell[2] for cell in matrix["cells"]) == len(
        [r for r in CertCorpus.from_logs(logs).iter_records() if r.is_precert]
    )


def test_sections_without_serializer_are_listed_unserialized(world):
    logs, cas = world
    list(_issue_rounds(logs, cas, rounds=2))
    live = LiveAnalytics(sections_graph(MONTH), with_names=True)
    for log in logs:
        live.fold_entries(log.name, log.entries)
    snapshot = live.to_dict()
    # LeakageStats has no to_dict: reported, not silently dropped.
    assert snapshot["unserialized"] == ["leakage"]
    assert "leakage" not in snapshot["sections"]
    json.dumps(snapshot)


def test_with_names_controls_the_names_column(world):
    logs, cas = world
    list(_issue_rounds(logs, cas, rounds=2))
    lean = LiveAnalytics(section2_graph(MONTH))
    named = LiveAnalytics(section2_graph(MONTH), with_names=True)
    seen = {}
    for tag, live in (("lean", lean), ("named", named)):
        records = []
        original = live.graph.fold_into

        def capture(states, recs, _records=records, _fold=original):
            recs = list(recs)
            _records.extend(recs)
            return _fold(states, recs)

        live.graph.fold_into = capture
        live.fold_entries(logs[0].name, logs[0].entries)
        seen[tag] = records
    assert all(record.names == () for record in seen["lean"])
    assert any(record.names != () for record in seen["named"])


def test_render_is_deterministic_and_summarizes(world):
    logs, cas = world
    live = LiveAnalytics(section2_graph(MONTH))
    feed = CertFeed(logs, analytics=live)
    for when in _issue_rounds(logs, cas):
        feed.poll(when)
    text = live.render()
    assert text == live.render()
    assert "schema v1" in text
    assert "growth (Fig 1a)" in text
    assert "matrix (Table 1)" in text
    for ca in ("Live CA 0", "Live CA 1"):
        assert ca in text


def test_render_of_empty_analytics():
    live = LiveAnalytics(section2_graph(MONTH))
    text = live.render()
    assert "0 records, 0 batches" in text
