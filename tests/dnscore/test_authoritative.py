"""Tests for the authoritative server and its query log."""

import pytest

from repro.dnscore.authoritative import AuthoritativeServer
from repro.dnscore.edns import ClientSubnet
from repro.dnscore.records import RecordType
from repro.dnscore.zone import Zone
from repro.util.timeutil import utc_datetime


@pytest.fixture()
def server():
    srv = AuthoritativeServer(name="test-auth")
    zone = Zone("hpot.net")
    zone.add_simple("abc.hpot.net", RecordType.A, "198.18.0.10")
    zone.add_simple("abc.hpot.net", RecordType.AAAA, "2001:db8::1")
    srv.add_zone(zone)
    return srv


def query(server, name, qtype=RecordType.A, asn=15169, ecs=None, when=None):
    return server.query(
        name,
        qtype,
        now=when or utc_datetime(2018, 4, 12, 14, 20),
        source_ip="74.125.0.53",
        source_asn=asn,
        client_subnet=ecs,
        resolver_name="test",
    )


def test_query_answers_and_logs(server):
    records = query(server, "abc.hpot.net")
    assert records[0].value == "198.18.0.10"
    assert len(server.query_log) == 1
    assert server.query_log[0].qname == "abc.hpot.net"


def test_unknown_name_logged_but_empty(server):
    assert query(server, "nope.hpot.net") == []
    assert len(server.query_log) == 1


def test_out_of_zone_query(server):
    assert query(server, "other.example") == []


def test_query_log_carries_metadata(server):
    ecs = ClientSubnet.from_ipv4("88.198.40.23")
    query(server, "abc.hpot.net", asn=29073, ecs=ecs)
    entry = server.query_log[-1]
    assert entry.source_asn == 29073
    assert str(entry.client_subnet) == "88.198.40.0/24"
    assert entry.qtype is RecordType.A


def test_queries_for_filters_subtree(server):
    query(server, "abc.hpot.net")
    query(server, "sub.abc.hpot.net")
    query(server, "xyz.hpot.net")
    matches = server.queries_for("abc.hpot.net")
    assert len(matches) == 2


def test_clear_log(server):
    query(server, "abc.hpot.net")
    server.clear_log()
    assert server.query_log == []


def test_log_queries_flag_disables_logging(server):
    server.log_queries = False
    query(server, "abc.hpot.net")
    assert server.query_log == []


def test_zone_for_longest_match():
    srv = AuthoritativeServer()
    srv.add_zone(Zone("example.org"))
    sub = srv.add_zone(Zone("deep.example.org"))
    assert srv.zone_for("www.deep.example.org") is sub
    assert srv.zone_for("www.example.org").origin == "example.org"
    assert srv.zone_for("unrelated.net") is None
