"""Tests for CAA lookups and CA-side enforcement."""

import pytest

from repro.dnscore.caa import (
    caa_authorized_issuers,
    make_caa_checker,
    parse_caa_value,
)
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CaaDeniedError, CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 4, 1)


@pytest.fixture()
def resolver():
    universe = DnsUniverse()
    zone = Zone("locked.example")
    zone.add_simple("locked.example", RecordType.CAA, '0 issue "good-ca"')
    zone.add_simple("www.locked.example", RecordType.A, "192.0.2.1")
    universe.add_zone(zone)
    override = Zone("open.example")
    override.add_simple("open.example", RecordType.A, "192.0.2.2")
    universe.add_zone(override)
    multi = Zone("multi.example")
    multi.add_simple("multi.example", RecordType.CAA, '0 issue "good-ca"')
    multi.add_simple("multi.example", RecordType.CAA, '0 issue "other-ca"')
    universe.add_zone(multi)
    forbidden = Zone("frozen.example")
    forbidden.add_simple("frozen.example", RecordType.CAA, '0 iodef "mailto:sec@frozen.example"')
    universe.add_zone(forbidden)
    return RecursiveResolver("caa-test", universe)


class TestParsing:
    def test_wire_form(self):
        assert parse_caa_value('0 issue "letsencrypt-org"') == "letsencrypt-org"

    def test_bare_form(self):
        assert parse_caa_value("issue good-ca") == "good-ca"

    def test_issuewild(self):
        assert parse_caa_value("0 issuewild star-ca") == "star-ca"

    def test_iodef_ignored(self):
        assert parse_caa_value('0 iodef "mailto:x@y"') is None

    def test_garbage(self):
        assert parse_caa_value("") is None
        assert parse_caa_value("0") is None


class TestLookup:
    def test_direct_record(self, resolver):
        assert caa_authorized_issuers(resolver, "locked.example", NOW) == ["good-ca"]

    def test_climbing_from_subdomain(self, resolver):
        assert caa_authorized_issuers(resolver, "deep.www.locked.example", NOW) == [
            "good-ca"
        ]

    def test_no_caa_anywhere_is_unrestricted(self, resolver):
        assert caa_authorized_issuers(resolver, "www.open.example", NOW) == []

    def test_multiple_issuers(self, resolver):
        issuers = caa_authorized_issuers(resolver, "multi.example", NOW)
        assert sorted(issuers) == ["good-ca", "other-ca"]

    def test_caa_without_issue_tags_forbids_everyone(self, resolver):
        assert caa_authorized_issuers(resolver, "frozen.example", NOW) == ["<nobody>"]


class TestEnforcement:
    def test_authorized_ca_issues(self, resolver):
        ca = CertificateAuthority(
            "Good CA", caa_checker=make_caa_checker(resolver),
            caa_identity="good-ca", key_bits=256,
        )
        pair = ca.issue(
            IssuanceRequest(("www.locked.example",), embed_scts=False), [], NOW
        )
        assert pair.final_certificate.subject_cn == "www.locked.example"

    def test_unauthorized_ca_refused(self, resolver):
        ca = CertificateAuthority(
            "Evil CA", caa_checker=make_caa_checker(resolver),
            caa_identity="evil-ca", key_bits=256,
        )
        with pytest.raises(CaaDeniedError):
            ca.issue(
                IssuanceRequest(("www.locked.example",), embed_scts=False), [], NOW
            )

    def test_unrestricted_name_any_ca(self, resolver):
        ca = CertificateAuthority(
            "Any CA", caa_checker=make_caa_checker(resolver),
            caa_identity="any-ca", key_bits=256,
        )
        pair = ca.issue(
            IssuanceRequest(("www.open.example",), embed_scts=False), [], NOW
        )
        assert pair is not None

    def test_default_identity_derived_from_name(self, resolver):
        ca = CertificateAuthority(
            "Good CA", caa_checker=make_caa_checker(resolver), key_bits=256
        )
        # Derived identity is "good-ca" -> authorized.
        pair = ca.issue(
            IssuanceRequest(("www.locked.example",), embed_scts=False), [], NOW
        )
        assert pair is not None

    def test_caa_denial_happens_before_validation_and_logging(self, resolver, fresh_logs):
        calls = []
        ca = CertificateAuthority(
            "Evil CA",
            caa_checker=make_caa_checker(resolver),
            caa_identity="evil-ca",
            validation_hook=lambda names, when: calls.append(names),
            key_bits=256,
        )
        log = fresh_logs["Google Pilot log"]
        before = log.size
        with pytest.raises(CaaDeniedError):
            ca.issue(IssuanceRequest(("www.locked.example",)), [log], NOW)
        assert calls == []
        assert log.size == before
