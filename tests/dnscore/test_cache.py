"""Tests for the TTL-honoring caching resolver."""

from datetime import timedelta

import pytest

from repro.dnscore.cache import CachingResolver
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, Rcode, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.util.timeutil import utc_datetime

NOW = utc_datetime(2018, 4, 30, 13, 0)


@pytest.fixture()
def setup():
    universe = DnsUniverse()
    zone = Zone("cache.example")
    zone.add_simple("short.cache.example", RecordType.A, "192.0.2.1", ttl=60)
    zone.add_simple("long.cache.example", RecordType.A, "192.0.2.2", ttl=3600)
    zone.add_simple("loop.cache.example", RecordType.CNAME, "loop.cache.example")
    universe.add_zone(zone)
    auth = universe.servers[0]
    upstream = RecursiveResolver("up", universe)
    return auth, CachingResolver(upstream)


def test_repeat_query_served_from_cache(setup):
    auth, resolver = setup
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    upstream_queries = len(auth.query_log)
    for _ in range(5):
        result = resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    assert result.addresses == ["192.0.2.1"]
    assert len(auth.query_log) == upstream_queries  # no new upstream traffic
    assert resolver.stats.hits == 5
    assert resolver.stats.misses == 1


def test_entry_expires_after_ttl(setup):
    auth, resolver = setup
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    later = NOW + timedelta(seconds=61)
    resolver.resolve("short.cache.example", RecordType.A, now=later)
    assert resolver.stats.misses == 2
    assert resolver.stats.expirations == 1


def test_entry_within_ttl_not_expired(setup):
    _, resolver = setup
    resolver.resolve("long.cache.example", RecordType.A, now=NOW)
    result = resolver.resolve(
        "long.cache.example", RecordType.A, now=NOW + timedelta(minutes=30)
    )
    assert resolver.stats.hits == 1
    assert result.addresses == ["192.0.2.2"]


def test_negative_caching(setup):
    auth, resolver = setup
    resolver.resolve("missing.cache.example", RecordType.A, now=NOW)
    upstream_queries = len(auth.query_log)
    result = resolver.resolve("missing.cache.example", RecordType.A, now=NOW)
    assert result.rcode is Rcode.NXDOMAIN
    assert len(auth.query_log) == upstream_queries
    # After the negative TTL the query goes upstream again.
    resolver.resolve(
        "missing.cache.example", RecordType.A, now=NOW + timedelta(seconds=301)
    )
    assert len(auth.query_log) > upstream_queries


def test_servfail_not_cached(setup):
    auth, resolver = setup
    resolver.resolve("loop.cache.example", RecordType.A, now=NOW)
    before = len(auth.query_log)
    resolver.resolve("loop.cache.example", RecordType.A, now=NOW)
    assert len(auth.query_log) > before  # re-queried


def test_qtype_distinguished(setup):
    _, resolver = setup
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    resolver.resolve("short.cache.example", RecordType.AAAA, now=NOW)
    assert resolver.stats.misses == 2


def test_case_insensitive_key(setup):
    _, resolver = setup
    resolver.resolve("SHORT.cache.example", RecordType.A, now=NOW)
    resolver.resolve("short.CACHE.example", RecordType.A, now=NOW)
    assert resolver.stats.hits == 1


def test_flush(setup):
    _, resolver = setup
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    resolver.flush()
    assert len(resolver) == 0
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    assert resolver.stats.misses == 2


def test_hit_rate(setup):
    _, resolver = setup
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    resolver.resolve("short.cache.example", RecordType.A, now=NOW)
    assert resolver.stats.hit_rate == pytest.approx(0.5)
