"""Tests for the EDNS Client Subnet option."""

import pytest

from repro.dnscore.edns import ClientSubnet


def test_from_ipv4_truncates_to_24():
    subnet = ClientSubnet.from_ipv4("88.198.40.23")
    assert str(subnet) == "88.198.40.0/24"


def test_from_ipv4_custom_prefix():
    assert str(ClientSubnet.from_ipv4("10.20.30.40", 16)) == "10.20.0.0/16"
    assert str(ClientSubnet.from_ipv4("10.20.30.40", 32)) == "10.20.30.40/32"
    assert str(ClientSubnet.from_ipv4("10.20.30.40", 0)) == "0.0.0.0/0"


def test_invalid_address_rejected():
    with pytest.raises(ValueError):
        ClientSubnet.from_ipv4("300.1.1.1")
    with pytest.raises(ValueError):
        ClientSubnet.from_ipv4("1.2.3")
    with pytest.raises(ValueError):
        ClientSubnet.from_ipv4("a.b.c.d")


def test_covers():
    subnet = ClientSubnet.from_ipv4("88.198.40.23")
    assert subnet.covers("88.198.40.200")
    assert not subnet.covers("88.198.41.1")


def test_equality_is_value_based():
    assert ClientSubnet.from_ipv4("1.2.3.4") == ClientSubnet.from_ipv4("1.2.3.99")
