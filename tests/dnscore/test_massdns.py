"""Tests for the bulk resolver and control-name methodology."""

import pytest

from repro.dnscore.massdns import BulkResolver, control_name
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime

NOW = utc_datetime(2018, 4, 27)


@pytest.fixture()
def setup():
    universe = DnsUniverse()
    real = Zone("real.example")
    real.add_simple("www.real.example", RecordType.A, "185.199.0.1")
    universe.add_zone(real)
    wildcard = Zone("wild.example", default_a="185.199.0.9")
    universe.add_zone(wildcard)
    unroutable = Zone("bogus.example", default_a="203.0.113.66")
    universe.add_zone(unroutable)
    resolver = RecursiveResolver("bulk", universe)
    rng = SeededRng(77, "bulk-tests")
    return universe, resolver, rng


def test_control_name_replaces_leftmost_label():
    rng = SeededRng(1)
    control = control_name("www.example.org", rng)
    assert control.endswith(".example.org")
    assert not control.startswith("www.")
    assert len(control.split(".")[0]) == 16


def test_control_name_requires_two_labels():
    with pytest.raises(ValueError):
        control_name("org", SeededRng(1))


def test_genuine_discovery(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng)
    result = bulk.resolve_one("www.real.example", NOW)
    assert result.candidate_answered
    assert not result.control_answered
    assert result.discovered
    assert result.addresses == ("185.199.0.1",)


def test_wildcard_zone_caught_by_control(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng)
    result = bulk.resolve_one("www.wild.example", NOW)
    assert result.candidate_answered
    assert result.control_answered
    assert not result.discovered


def test_nonexistent_name(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng)
    result = bulk.resolve_one("missing.real.example", NOW)
    assert not result.candidate_answered
    assert not result.discovered


def test_routing_filter_discards_unroutable(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(
        resolver, rng, address_filter=lambda ip: ip.startswith("185.")
    )
    result = bulk.resolve_one("www.bogus.example", NOW)
    assert not result.candidate_answered
    assert not result.discovered


def test_without_filter_unroutable_counts(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng, address_filter=None)
    result = bulk.resolve_one("www.bogus.example", NOW)
    # default_a answers the control too, so still not a discovery —
    # but the candidate does answer.
    assert result.candidate_answered


def test_resolve_all_order_preserved(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng)
    names = ["www.real.example", "www.wild.example", "nope.real.example"]
    results = bulk.resolve_all(names, NOW)
    assert [r.fqdn for r in results] == names


def test_resolve_without_controls_skips_control_queries(setup):
    _, resolver, rng = setup
    bulk = BulkResolver(resolver, rng)
    results = bulk.resolve_without_controls(["www.wild.example"], NOW)
    # Ablation: the wildcard zone now *looks* like a discovery.
    assert results[0].discovered
