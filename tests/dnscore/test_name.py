"""Tests for FQDN syntax validation."""

import pytest

from repro.dnscore.name import (
    is_subdomain_of,
    is_valid_fqdn,
    is_valid_label,
    normalize_name,
    parent_name,
    random_control_label,
    split_labels,
)
from repro.util.rng import SeededRng


class TestValidity:
    @pytest.mark.parametrize("name", [
        "example.org",
        "www.example.org",
        "a-b.example.co.uk",
        "xn--idn.example.de",
        "123start.example.com",  # RFC 1123 allows leading digits
        "EXAMPLE.ORG",
        "example.org.",
    ])
    def test_valid(self, name):
        assert is_valid_fqdn(name)

    @pytest.mark.parametrize("name", [
        "",
        "localhost",                      # single label
        "-dash.example.org",              # leading hyphen
        "dash-.example.org",              # trailing hyphen
        "under_score.example.org",        # underscore
        "spa ce.example.org",
        "example.123",                    # all-numeric TLD
        "example.-org",
        "." * 300,
        ("a" * 64) + ".example.org",      # label too long
        "a." * 130 + "org",               # name too long
        "*.example.org",                  # wildcard without allow flag
    ])
    def test_invalid(self, name):
        assert not is_valid_fqdn(name)

    def test_wildcard_allowed_when_requested(self):
        assert is_valid_fqdn("*.example.org", allow_wildcard=True)
        assert not is_valid_fqdn("*.org", allow_wildcard=True)
        assert not is_valid_fqdn("a.*.example.org", allow_wildcard=True)

    def test_max_length_boundary(self):
        # 253 characters exactly: valid.
        label = "a" * 49
        name = ".".join([label] * 5) + ".org"  # 49*5 + 4 + 4 = 253
        assert len(name) == 253
        assert is_valid_fqdn(name)
        assert not is_valid_fqdn("x" + name)


def test_normalize_name():
    assert normalize_name("  WWW.Example.ORG. ") == "www.example.org"


def test_split_labels():
    assert split_labels("a.b.c") == ["a", "b", "c"]
    assert split_labels("") == []


def test_is_valid_label():
    assert is_valid_label("abc-123")
    assert not is_valid_label("")
    assert not is_valid_label("a" * 64)
    assert not is_valid_label("-x")


def test_parent_name():
    assert parent_name("a.b.c") == "b.c"
    assert parent_name("org") is None


def test_is_subdomain_of():
    assert is_subdomain_of("www.example.org", "example.org")
    assert is_subdomain_of("example.org", "example.org")
    assert not is_subdomain_of("evilexample.org", "example.org")
    assert not is_subdomain_of("example.org", "www.example.org")


def test_random_control_label_properties():
    rng = SeededRng(1)
    label = random_control_label(rng)
    assert len(label) == 16
    assert is_valid_label(label)
