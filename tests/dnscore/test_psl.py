"""Tests for the Public Suffix List engine."""

import pytest

from repro.dnscore.psl import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl():
    return default_psl()


class TestPublicSuffix:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"

    def test_multi_label_suffix(self, psl):
        assert psl.public_suffix("example.co.uk") == "co.uk"
        assert psl.public_suffix("www.example.gov.uk") == "gov.uk"

    def test_longest_match_wins(self, psl):
        # co.uk beats uk-as-unknown-TLD fallback.
        assert psl.public_suffix("a.b.co.uk") == "co.uk"

    def test_unknown_tld_falls_back_to_rightmost_label(self, psl):
        assert psl.public_suffix("example.zz") == "zz"

    def test_wildcard_rule(self, psl):
        # "*.ck" makes every direct child of ck a public suffix.
        assert psl.public_suffix("example.anything.ck") == "anything.ck"

    def test_exception_rule_beats_wildcard(self, psl):
        # "!www.ck" exempts www.ck from the wildcard.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registrable_domain("www.ck") == "www.ck"


class TestRegistrableDomain:
    def test_simple(self, psl):
        assert psl.registrable_domain("www.example.com") == "example.com"

    def test_deep_subdomain(self, psl):
        assert psl.registrable_domain("a.b.c.example.co.uk") == "example.co.uk"

    def test_bare_suffix_has_no_registrable(self, psl):
        assert psl.registrable_domain("co.uk") is None
        assert psl.registrable_domain("com") is None

    def test_registrable_of_registrable_is_itself(self, psl):
        assert psl.registrable_domain("example.org") == "example.org"


class TestSubdomainLabels:
    def test_no_labels_for_registrable(self, psl):
        assert psl.subdomain_labels("example.com") == []

    def test_single_label(self, psl):
        assert psl.subdomain_labels("www.example.com") == ["www"]

    def test_multiple_labels_in_order(self, psl):
        assert psl.subdomain_labels("dev.api.example.co.uk") == ["dev", "api"]

    def test_labels_for_bare_suffix(self, psl):
        assert psl.subdomain_labels("co.uk") == []


def test_split_returns_consistent_triple(psl):
    labels, registrable, suffix = psl.split("mail.internal.example.gov.uk")
    assert labels == ["mail", "internal"]
    assert registrable == "example.gov.uk"
    assert suffix == "gov.uk"
    assert f"{'.'.join(labels)}.{registrable}" == "mail.internal.example.gov.uk"


def test_is_public_suffix(psl):
    assert psl.is_public_suffix("com")
    assert psl.is_public_suffix("co.uk")
    assert not psl.is_public_suffix("example.com")


def test_custom_rules():
    psl = PublicSuffixList(rules=["example"], extra_rules=["sub.example"])
    assert psl.public_suffix("foo.sub.example") == "sub.example"
    assert psl.registrable_domain("foo.sub.example") == "foo.sub.example"


def test_comment_rules_ignored():
    psl = PublicSuffixList(rules=["com", "// a comment", ""])
    assert psl.public_suffix("x.com") == "com"


def test_default_psl_is_shared():
    assert default_psl() is default_psl()


def test_suffixes_exposes_exact_rules(psl):
    assert "com" in psl.suffixes()
    assert "gov.uk" in psl.suffixes()
