"""Tests for reverse DNS and rDNS-tree walking."""

import pytest

from repro.dnscore.rdns import (
    ReverseZone,
    ipv6_ptr_name,
    ipv6_to_nibbles,
    random_ipv6_scan_hit_probability,
    walk_rdns_tree,
)


class TestNibbles:
    def test_full_address(self):
        nibbles = ipv6_to_nibbles("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert len(nibbles) == 32
        assert nibbles[0] == "1"      # least significant first
        assert nibbles[-1] == "2"     # most significant last

    def test_compressed_address(self):
        assert ipv6_to_nibbles("2001:db8::1") == ipv6_to_nibbles(
            "2001:0db8:0000:0000:0000:0000:0000:0001"
        )

    def test_ptr_name(self):
        name = ipv6_ptr_name("2001:db8::1")
        assert name.endswith("8.b.d.0.1.0.0.2.ip6.arpa")
        assert name.startswith("1.0.0.0.")

    @pytest.mark.parametrize("bad", ["2001:::1", "2001:db8::1::2", "gggg::1"])
    def test_invalid_addresses(self, bad):
        with pytest.raises(ValueError):
            ipv6_to_nibbles(bad)


class TestReverseZone:
    def test_ptr_roundtrip(self):
        zone = ReverseZone()
        owner = zone.add_ptr("2001:db8::42", "host.example.net")
        assert zone.status(owner) == "ptr"
        assert zone.ptr(owner) == "host.example.net"

    def test_ancestors_are_empty_non_terminals(self):
        zone = ReverseZone()
        owner = zone.add_ptr("2001:db8::42", "host.example.net")
        parent = owner.split(".", 1)[1]
        assert zone.status(parent) == "empty-non-terminal"

    def test_unrelated_subtree_is_nxdomain(self):
        zone = ReverseZone()
        zone.add_ptr("2001:db8::42", "host.example.net")
        assert zone.status("1.2.3.ip6.arpa") == "nxdomain"

    def test_query_counter(self):
        zone = ReverseZone()
        zone.add_ptr("2001:db8::1", "a.example")
        zone.status("ip6.arpa")
        zone.status("ip6.arpa")
        assert zone.queries == 2


class TestWalking:
    def build_zone(self, count):
        zone = ReverseZone()
        for i in range(count):
            zone.add_ptr(f"2001:db8:1::{i + 1:x}", f"h{i}.hpot.net")
        return zone

    def test_walk_finds_all_ptrs(self):
        zone = self.build_zone(11)
        result = walk_rdns_tree(zone, [])
        assert len(result.discovered) == 11
        assert set(result.discovered.values()) == {
            f"h{i}.hpot.net" for i in range(11)
        }

    def test_walk_is_pruned_not_exhaustive(self):
        zone = self.build_zone(11)
        result = walk_rdns_tree(zone, [])
        # 2^128 addresses, but queries stay linear in the tree size.
        assert result.queries_used < 32 * 16 * 11

    def test_walk_respects_query_budget(self):
        zone = self.build_zone(11)
        result = walk_rdns_tree(zone, [], max_queries=10)
        assert result.queries_used <= 10

    def test_walk_empty_zone(self):
        zone = ReverseZone()
        result = walk_rdns_tree(zone, [])
        assert result.discovered == {}
        assert result.queries_used == 1  # the root probe

    def test_walk_from_prefix(self):
        zone = self.build_zone(3)
        zone.add_ptr("2001:db9::1", "other.example")  # different /32
        from repro.dnscore.rdns import ipv6_to_nibbles

        prefix = ipv6_to_nibbles("2001:db8::")[-8:]  # 2001:db8 /32
        result = walk_rdns_tree(zone, prefix)
        assert len(result.discovered) == 3
        assert "other.example" not in result.discovered.values()


def test_random_scan_probability_is_hopeless():
    # 11 honeypot addresses in a /64: one probe's hit chance ~ 6e-19.
    p = random_ipv6_scan_hit_probability(11, prefix_bits=64)
    assert p < 1e-15
    assert random_ipv6_scan_hit_probability(2**64, prefix_bits=64) == 1.0
