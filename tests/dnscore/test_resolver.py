"""Tests for recursive resolution over the simulated universe."""

import pytest

from repro.dnscore.authoritative import AuthoritativeServer
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import (
    DnsUniverse,
    MAX_CNAME_CHAIN,
    Rcode,
    RecursiveResolver,
)
from repro.dnscore.zone import Zone


@pytest.fixture()
def universe():
    u = DnsUniverse()
    zone = Zone("example.org")
    zone.add_simple("example.org", RecordType.A, "192.0.2.1")
    zone.add_simple("www.example.org", RecordType.CNAME, "cdn.example.org")
    zone.add_simple("cdn.example.org", RecordType.A, "192.0.2.2")
    u.add_zone(zone)
    other = Zone("cross.net")
    other.add_simple("www.cross.net", RecordType.CNAME, "cdn.example.org")
    u.add_zone(other)
    return u


@pytest.fixture()
def resolver(universe):
    return RecursiveResolver("test-resolver", universe, asn=64496)


def test_direct_a_lookup(resolver, now):
    result = resolver.resolve("example.org", RecordType.A, now=now)
    assert result.rcode is Rcode.NOERROR
    assert result.addresses == ["192.0.2.1"]


def test_cname_chase(resolver, now):
    result = resolver.resolve("www.example.org", RecordType.A, now=now)
    assert result.rcode is Rcode.NOERROR
    assert result.addresses == ["192.0.2.2"]
    assert result.cname_chain == ("cdn.example.org",)


def test_cross_zone_cname(resolver, now):
    result = resolver.resolve("www.cross.net", RecordType.A, now=now)
    assert result.addresses == ["192.0.2.2"]


def test_nxdomain_for_unknown_zone(resolver, now):
    result = resolver.resolve("nowhere.invalid", RecordType.A, now=now)
    assert result.rcode is Rcode.NXDOMAIN
    assert result.addresses == []


def test_nxdomain_for_missing_name(resolver, now):
    result = resolver.resolve("missing.example.org", RecordType.A, now=now)
    assert result.rcode is Rcode.NXDOMAIN


def test_cname_query_type_not_chased(resolver, now):
    result = resolver.resolve("www.example.org", RecordType.CNAME, now=now)
    assert result.rcode is Rcode.NOERROR
    assert result.answers[0].value == "cdn.example.org"
    assert result.cname_chain == ()


def test_deep_cname_chain_servfails(now):
    u = DnsUniverse()
    zone = Zone("deep.example")
    for hop in range(MAX_CNAME_CHAIN + 3):
        zone.add_simple(
            f"h{hop}.deep.example", RecordType.CNAME, f"h{hop + 1}.deep.example"
        )
    u.add_zone(zone)
    resolver = RecursiveResolver("r", u)
    result = resolver.resolve("h0.deep.example", RecordType.A, now=now)
    assert result.rcode is Rcode.SERVFAIL


def test_chain_at_limit_resolves(now):
    u = DnsUniverse()
    zone = Zone("edge.example")
    for hop in range(MAX_CNAME_CHAIN):
        zone.add_simple(
            f"h{hop}.edge.example", RecordType.CNAME, f"h{hop + 1}.edge.example"
        )
    zone.add_simple(f"h{MAX_CNAME_CHAIN}.edge.example", RecordType.A, "192.0.2.9")
    u.add_zone(zone)
    resolver = RecursiveResolver("r", u)
    result = resolver.resolve("h0.edge.example", RecordType.A, now=now)
    assert result.rcode is Rcode.NOERROR
    assert len(result.cname_chain) == MAX_CNAME_CHAIN


def test_broken_cname_target_is_nxdomain(resolver, universe, now):
    zone = universe.server_for("example.org").zone_for("example.org")
    zone.add_simple("dangling.example.org", RecordType.CNAME, "void.example.org")
    result = resolver.resolve("dangling.example.org", RecordType.A, now=now)
    assert result.rcode is Rcode.NXDOMAIN


def test_resolver_identity_reaches_query_log(universe, now):
    auth = universe.server_for("example.org")
    resolver = RecursiveResolver("logged", universe, ip="10.9.8.7", asn=12345)
    resolver.resolve("example.org", RecordType.A, now=now)
    entry = auth.query_log[-1]
    assert entry.source_ip == "10.9.8.7"
    assert entry.source_asn == 12345
    assert entry.resolver_name == "logged"


def test_ecs_forwarded_when_enabled(universe, now):
    auth = universe.server_for("example.org")
    resolver = RecursiveResolver("gdns", universe, forwards_ecs=True)
    resolver.resolve("example.org", RecordType.A, now=now, client_ip="203.0.113.77")
    entry = auth.query_log[-1]
    assert str(entry.client_subnet) == "203.0.113.0/24"


def test_ecs_not_forwarded_by_default(universe, now):
    auth = universe.server_for("example.org")
    resolver = RecursiveResolver("plain", universe)
    resolver.resolve("example.org", RecordType.A, now=now, client_ip="203.0.113.77")
    assert auth.query_log[-1].client_subnet is None


def test_longest_origin_match(now):
    u = DnsUniverse()
    parent = Zone("example.org")
    parent.add_simple("example.org", RecordType.A, "192.0.2.1")
    child = Zone("sub.example.org")
    child.add_simple("www.sub.example.org", RecordType.A, "192.0.2.50")
    u.add_zone(parent)
    dedicated = AuthoritativeServer(name="child-auth")
    u.add_zone(child, dedicated)
    assert u.server_for("www.sub.example.org") is dedicated


def test_queries_sent_counter(resolver, now):
    before = resolver.queries_sent
    resolver.resolve("www.example.org", RecordType.A, now=now)
    assert resolver.queries_sent == before + 2  # CNAME + target
