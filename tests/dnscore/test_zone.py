"""Tests for zone storage and lookup behaviours."""

import pytest

from repro.dnscore.records import RecordType, ResourceRecord
from repro.dnscore.zone import Zone


@pytest.fixture()
def zone():
    z = Zone("example.org")
    z.add_simple("example.org", RecordType.A, "192.0.2.1")
    z.add_simple("www.example.org", RecordType.A, "192.0.2.2")
    z.add_simple("mail.example.org", RecordType.CNAME, "www.example.org")
    z.add_simple("www.example.org", RecordType.AAAA, "2001:db8::2")
    return z


def test_exact_lookup(zone):
    records = zone.lookup("www.example.org", RecordType.A)
    assert [r.value for r in records] == ["192.0.2.2"]


def test_lookup_is_case_insensitive(zone):
    assert zone.lookup("WWW.Example.ORG", RecordType.A)


def test_nodata_for_missing_type(zone):
    assert zone.lookup("example.org", RecordType.MX) == []


def test_nxdomain_for_missing_name(zone):
    assert zone.lookup("missing.example.org", RecordType.A) == []


def test_cname_returned_for_other_types(zone):
    records = zone.lookup("mail.example.org", RecordType.A)
    assert records[0].rtype is RecordType.CNAME
    assert records[0].value == "www.example.org"


def test_add_rejects_foreign_name(zone):
    with pytest.raises(ValueError):
        zone.add_simple("other.net", RecordType.A, "192.0.2.9")


def test_wildcard_match():
    z = Zone("wild.example")
    z.add_simple("*.wild.example", RecordType.A, "192.0.2.7")
    records = z.lookup("anything.wild.example", RecordType.A)
    assert records[0].value == "192.0.2.7"
    assert records[0].name == "anything.wild.example"  # synthesized owner


def test_wildcard_matches_deep_names():
    z = Zone("wild.example")
    z.add_simple("*.wild.example", RecordType.A, "192.0.2.7")
    assert z.lookup("a.b.wild.example", RecordType.A)


def test_wildcard_does_not_cover_apex():
    z = Zone("wild.example")
    z.add_simple("*.wild.example", RecordType.A, "192.0.2.7")
    assert z.lookup("wild.example", RecordType.A) == []


def test_explicit_record_beats_wildcard():
    z = Zone("wild.example")
    z.add_simple("*.wild.example", RecordType.A, "192.0.2.7")
    z.add_simple("www.wild.example", RecordType.A, "192.0.2.8")
    assert z.lookup("www.wild.example", RecordType.A)[0].value == "192.0.2.8"


def test_default_a_answers_anything():
    z = Zone("broken.example", default_a="198.51.100.5")
    records = z.lookup("random-junk.broken.example", RecordType.A)
    assert records[0].value == "198.51.100.5"


def test_default_a_only_for_a_queries():
    z = Zone("broken.example", default_a="198.51.100.5")
    assert z.lookup("x.broken.example", RecordType.AAAA) == []


def test_explicit_beats_default_a():
    z = Zone("broken.example", default_a="198.51.100.5")
    z.add_simple("real.broken.example", RecordType.A, "192.0.2.30")
    assert z.lookup("real.broken.example", RecordType.A)[0].value == "192.0.2.30"


def test_contains(zone):
    assert zone.contains("deep.www.example.org")
    assert not zone.contains("example.com")


def test_names_and_record_count(zone):
    assert "www.example.org" in zone.names()
    assert zone.record_count() == 4


def test_wildcard_owner_add_allowed():
    z = Zone("example.org")
    z.add(ResourceRecord("*.example.org", RecordType.A, "192.0.2.1"))
    assert z.lookup("x.example.org", RecordType.A)
