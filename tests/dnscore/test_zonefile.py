"""Tests for zone file parsing and serialization."""

import pytest

from repro.dnscore.records import RecordType
from repro.dnscore.zonefile import (
    ZoneFileError,
    extract_registrable_domains,
    load_zone,
    parse_zone_file,
    serialize_zone,
)

SAMPLE = """\
$ORIGIN example.com.
$TTL 600
@        IN A     192.0.2.1       ; apex
www      IN A     192.0.2.2
         IN AAAA  2001:db8::2     ; owner inherited from www
mail 300 IN CNAME www
ftp.example.com. IN A 192.0.2.3   ; absolute owner
*.dev    IN A     192.0.2.4       ; wildcard
@        IN MX    10 mail
@        IN CAA   0 issue "good-ca"
"""


def test_parse_basics():
    records = parse_zone_file(SAMPLE)
    assert len(records) == 8
    by_key = {(r.name, r.rtype): r for r in records}
    assert by_key[("example.com", RecordType.A)].value == "192.0.2.1"
    assert by_key[("www.example.com", RecordType.A)].value == "192.0.2.2"


def test_owner_inheritance():
    records = parse_zone_file(SAMPLE)
    aaaa = next(r for r in records if r.rtype is RecordType.AAAA)
    assert aaaa.name == "www.example.com"


def test_explicit_ttl():
    records = parse_zone_file(SAMPLE)
    cname = next(r for r in records if r.rtype is RecordType.CNAME)
    assert cname.ttl == 300
    assert cname.value == "www.example.com"  # relative target resolved


def test_default_ttl_directive():
    records = parse_zone_file(SAMPLE)
    apex_a = next(r for r in records if r.name == "example.com" and r.rtype is RecordType.A)
    assert apex_a.ttl == 600


def test_absolute_owner():
    records = parse_zone_file(SAMPLE)
    assert any(r.name == "ftp.example.com" for r in records)


def test_wildcard_owner():
    records = parse_zone_file(SAMPLE)
    wildcard = next(r for r in records if r.name.startswith("*."))
    assert wildcard.name == "*.dev.example.com"


def test_mx_exchange_resolved():
    records = parse_zone_file(SAMPLE)
    mx = next(r for r in records if r.rtype is RecordType.MX)
    assert mx.value == "10 mail.example.com"


def test_comments_and_blank_lines_ignored():
    records = parse_zone_file("; pure comment\n\n$ORIGIN x.org.\nwww IN A 192.0.2.1\n")
    assert len(records) == 1


def test_relative_name_without_origin_fails():
    with pytest.raises(ZoneFileError):
        parse_zone_file("www IN A 192.0.2.1")


def test_at_without_origin_fails():
    with pytest.raises(ZoneFileError):
        parse_zone_file("@ IN A 192.0.2.1")


def test_unknown_type_fails():
    with pytest.raises(ZoneFileError) as err:
        parse_zone_file("$ORIGIN x.org.\nwww IN BOGUS data")
    assert err.value.line_number == 2


def test_unknown_directive_fails():
    with pytest.raises(ZoneFileError):
        parse_zone_file("$INCLUDE other.zone")


def test_load_zone_serves_records():
    zone = load_zone(SAMPLE, "example.com")
    assert zone.lookup("www.example.com", RecordType.A)[0].value == "192.0.2.2"
    assert zone.lookup("x.dev.example.com", RecordType.A)[0].value == "192.0.2.4"


def test_load_zone_from_path(tmp_path):
    path = tmp_path / "example.zone"
    path.write_text(SAMPLE)
    zone = load_zone(path, "example.com")
    assert zone.record_count() == 8


def test_serialize_parse_roundtrip():
    zone = load_zone(SAMPLE, "example.com")
    text = serialize_zone(zone)
    reparsed = load_zone(text, "example.com")
    assert sorted(map(str, reparsed.all_records())) == sorted(
        map(str, zone.all_records())
    )


def test_extract_registrable_domains():
    records = parse_zone_file(
        "$ORIGIN co.uk.\n"
        "alpha IN NS ns1.alpha.co.uk.\n"
        "www.alpha IN A 192.0.2.1\n"
        "beta IN NS ns1.beta.co.uk.\n"
    )
    domains = extract_registrable_domains(records)
    assert domains == ["alpha.co.uk", "beta.co.uk"]
