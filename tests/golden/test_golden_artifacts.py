"""Golden-output regression tests for the headline paper artifacts.

Each case pins the *exact rendered bytes* of one CLI artifact at a
small fixed scale/seed as a checked-in fixture: Figure 1a/1b (log
growth and rates), Table 1 (top log ranking by observed certificates),
Section 3.2 (SCT delivery channel shares), and Table 2 (subdomain
label counts).  Every case is asserted twice — serial and sharded
across a worker pool — so a regression in either the analyses, the
renderers, the workload seeding, or the parallel merge path shows up
as a byte diff.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/golden/test_golden_artifacts.py
"""

from pathlib import Path

import pytest

from repro.cli import COMMANDS, build_parser

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture name, CLI argv).  Scales are chosen so each case renders in
#: well under a second while still exercising every analysis stage.
CASES = [
    ("fig1a", ["fig1a", "--scale", "0.000002", "--seed", "7"]),
    ("fig1b", ["fig1b", "--scale", "0.000002", "--seed", "7"]),
    ("table1", ["table1", "--scale", "1e-9", "--seed", "42"]),
    ("sec32", ["sec32", "--scale", "1e-9", "--seed", "42"]),
    ("table2", ["table2", "--scale", "0.0001", "--seed", "5"]),
]

#: Extra argv for the sharded leg: 2 workers, shards small enough that
#: every case splits into several (the merge path really runs).
SHARDED = ["--workers", "2", "--shard-size", "512"]


def _render(argv):
    args = build_parser().parse_args(argv)
    return COMMANDS[args.artifact](args) + "\n"


@pytest.mark.parametrize("name,argv", CASES, ids=[case[0] for case in CASES])
def test_serial_matches_fixture(name, argv):
    expected = (FIXTURES / f"{name}.txt").read_text(encoding="utf-8")
    assert _render(argv) == expected


@pytest.mark.parametrize("name,argv", CASES, ids=[case[0] for case in CASES])
def test_sharded_matches_fixture(name, argv):
    expected = (FIXTURES / f"{name}.txt").read_text(encoding="utf-8")
    assert _render(argv + SHARDED) == expected


def regenerate():  # pragma: no cover - maintenance helper
    FIXTURES.mkdir(exist_ok=True)
    for name, argv in CASES:
        path = FIXTURES / f"{name}.txt"
        path.write_text(_render(argv), encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
