"""Tests for ASes, addressing, routing, and the event scheduler."""

from datetime import timedelta

import pytest

from repro.inet.addressing import AddressSpace, Ipv4Allocator, Ipv6Allocator
from repro.inet.asn import AS_REGISTRY, as_by_number, generic_ases, table4_symbol
from repro.inet.clock import EventScheduler
from repro.inet.routing import RoutingTable
from repro.util.timeutil import utc_datetime


class TestAsRegistry:
    def test_paper_cast_present(self):
        for asn in (15169, 8560, 54054, 44050, 16509, 14061, 36692, 29073, 24940):
            assert as_by_number(asn) is not None

    def test_google_symbol(self):
        assert AS_REGISTRY[15169].symbol == "★"
        assert table4_symbol(15169) == "★15169"

    def test_unknown_asn_symbol_falls_back_to_number(self):
        assert table4_symbol(99999) == "99999"

    def test_quasi_is_bulletproof(self):
        assert AS_REGISTRY[29073].category == "bulletproof"
        assert not AS_REGISTRY[29073].follows_scanning_best_practices

    def test_generic_ases_unique_and_addressable(self):
        tail = generic_ases(76)
        assert len({a.asn for a in tail}) == 76
        assert all(a.ipv4_blocks for a in tail)


class TestAddressing:
    def test_ipv4_allocations_unique(self):
        allocator = Ipv4Allocator(AS_REGISTRY[15169])
        addresses = [allocator.allocate() for _ in range(500)]
        assert len(set(addresses)) == 500

    def test_ipv4_stays_in_as_blocks(self):
        asys = AS_REGISTRY[14061]
        allocator = Ipv4Allocator(asys)
        blocks = set(asys.ipv4_blocks)
        for _ in range(50):
            ip = allocator.allocate()
            first, second, _, _ = (int(p) for p in ip.split("."))
            assert (first, second) in blocks

    def test_ipv6_allocations_unique(self):
        allocator = Ipv6Allocator(AS_REGISTRY[64500])
        addrs = {allocator.allocate() for _ in range(100)}
        assert len(addrs) == 100

    def test_allocator_without_blocks_raises(self):
        from repro.inet.asn import AutonomousSystem

        empty = AutonomousSystem(1, "Empty")
        with pytest.raises(ValueError):
            Ipv4Allocator(empty).allocate()
        with pytest.raises(ValueError):
            Ipv6Allocator(empty).allocate()

    def test_address_space_shares_allocators(self):
        space = AddressSpace()
        a = space.ipv4(AS_REGISTRY[15169])
        b = space.ipv4(AS_REGISTRY[15169])
        assert a != b


class TestRoutingTable:
    def test_contains_routed_prefix(self):
        table = RoutingTable([(185, 199)])
        assert "185.199.1.2" in table
        assert "185.200.1.2" not in table

    def test_from_ases(self):
        table = RoutingTable.from_ases([AS_REGISTRY[15169]])
        assert table.contains("74.125.3.4")

    def test_global_table_covers_registry(self):
        table = RoutingTable.global_table()
        assert "104.131.5.5" in table  # DigitalOcean
        assert "203.0.113.66" not in table  # TEST-NET-3, unrouted

    def test_malformed_addresses_rejected(self):
        table = RoutingTable([(1, 2)])
        assert not table.contains("1.2.3")
        assert not table.contains("a.b.c.d")
        assert not table.contains("")

    def test_len(self):
        assert len(RoutingTable([(1, 2), (3, 4)])) == 2


class TestEventScheduler:
    def test_runs_in_time_order(self):
        scheduler = EventScheduler()
        seen = []
        t0 = utc_datetime(2018, 4, 12, 14, 0)
        scheduler.schedule(t0 + timedelta(seconds=30), lambda t: seen.append("b"))
        scheduler.schedule(t0 + timedelta(seconds=10), lambda t: seen.append("a"))
        scheduler.schedule(t0 + timedelta(seconds=60), lambda t: seen.append("c"))
        scheduler.run_all()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        seen = []
        t = utc_datetime(2018, 4, 12, 14, 0)
        scheduler.schedule(t, lambda _: seen.append(1))
        scheduler.schedule(t, lambda _: seen.append(2))
        scheduler.run_all()
        assert seen == [1, 2]

    def test_run_until_boundary_inclusive(self):
        scheduler = EventScheduler()
        seen = []
        t0 = utc_datetime(2018, 4, 12, 14, 0)
        scheduler.schedule(t0, lambda _: seen.append("at"))
        scheduler.schedule(t0 + timedelta(seconds=1), lambda _: seen.append("after"))
        ran = scheduler.run_until(t0)
        assert ran == 1
        assert seen == ["at"]
        assert scheduler.pending() == 1

    def test_callbacks_may_schedule_more(self):
        scheduler = EventScheduler()
        seen = []
        t0 = utc_datetime(2018, 4, 12, 14, 0)

        def first(now):
            seen.append("first")
            scheduler.schedule(now + timedelta(seconds=5), lambda _: seen.append("chained"))

        scheduler.schedule(t0, first)
        scheduler.run_all()
        assert seen == ["first", "chained"]

    def test_scheduling_into_past_rejected(self):
        scheduler = EventScheduler()
        t0 = utc_datetime(2018, 4, 12, 14, 0)
        scheduler.schedule(t0, lambda _: None)
        scheduler.run_all()
        with pytest.raises(ValueError):
            scheduler.schedule(t0 - timedelta(seconds=1), lambda _: None)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        t0 = utc_datetime(2018, 4, 12, 14, 0)
        for i in range(3):
            scheduler.schedule(t0 + timedelta(seconds=i), lambda _: None)
        scheduler.run_all()
        assert scheduler.processed == 3
