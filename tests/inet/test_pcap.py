"""Tests for the packet-capture store."""

from datetime import timedelta

import pytest

from repro.inet.pcap import CaptureFilter, ConnectionRecord, PacketCapture
from repro.util.timeutil import utc_datetime

T0 = utc_datetime(2018, 4, 12, 14, 0)


def record(minutes=0, src="191.96.41.24", asn=29073, dst="198.18.0.10",
           port=443, sni=None, ipv6=False):
    return ConnectionRecord(
        time=T0 + timedelta(minutes=minutes),
        src_ip=src,
        src_asn=asn,
        dst_ip=dst,
        dst_port=port,
        sni=sni,
        ipv6=ipv6,
    )


@pytest.fixture()
def capture():
    return PacketCapture([
        record(5, port=22),
        record(1, port=443, sni="a.hpot.net"),
        record(10, src="104.131.44.7", asn=14061, port=443, sni="a.hpot.net"),
        record(3, dst="2001:db8:1::1", ipv6=True, asn=64501),
        record(7, port=80),
    ])


def test_records_sorted_by_time(capture):
    times = [r.time for r in capture]
    assert times == sorted(times)


def test_filter_by_asn(capture):
    hits = capture.filter(CaptureFilter(src_asn=29073))
    assert len(hits) == 3


def test_filter_by_port_and_sni(capture):
    hits = capture.filter(CaptureFilter(dst_port=443, sni="a.hpot.net"))
    assert len(hits) == 2


def test_filter_by_ipv6(capture):
    assert len(capture.filter(CaptureFilter(ipv6=True))) == 1
    assert len(capture.filter(CaptureFilter(ipv6=False))) == 4


def test_filter_time_window(capture):
    hits = capture.filter(
        CaptureFilter(after=T0 + timedelta(minutes=4), before=T0 + timedelta(minutes=8))
    )
    assert len(hits) == 2


def test_first(capture):
    first = capture.first(CaptureFilter(dst_port=443))
    assert first is not None
    assert first.time == T0 + timedelta(minutes=1)
    assert capture.first(CaptureFilter(dst_port=9999)) is None


def test_where_predicate(capture):
    assert len(capture.where(lambda r: r.dst_port < 100)) == 2


def test_unique_sources(capture):
    assert capture.unique_sources() == ["104.131.44.7", "191.96.41.24"]


def test_ports_probed(capture):
    assert capture.ports_probed("191.96.41.24") == [22, 80, 443]


def test_save_load_roundtrip(capture, tmp_path):
    path = tmp_path / "capture.jsonl"
    assert capture.save(path) == 5
    restored = PacketCapture.load(path)
    assert list(restored) == list(capture)


def test_append_and_len(capture):
    capture.append(record(20))
    assert len(capture) == 6


def test_honeypot_capture_integration():
    from repro.core.honeypot import CtHoneypotExperiment

    result = CtHoneypotExperiment(seed=8).run()
    capture = result.capture()
    # The Quasi scan is findable with a filter expression.
    quasi = capture.filter(CaptureFilter(src_asn=29073))
    ports = {r.dst_port for r in quasi}
    assert len(ports) >= 10
    # IPv6 view contains only the CA validation.
    v6 = capture.filter(CaptureFilter(ipv6=True))
    assert {r.src_asn for r in v6} == {64501}
