"""Integration tests: full pipelines across module boundaries."""

from datetime import date


from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, enumeration, leakage, misissuance, serversupport
from repro.core.honeypot import CtHoneypotExperiment
from repro.ct.loglist import build_default_logs
from repro.ct.monitor import StreamingMonitor
from repro.tls.connection import TlsConnection
from repro.tls.scanner import TlsScanner
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.workloads.domains import DomainWorkload
from repro.workloads.hosting import HostingWorkload
from repro.workloads.incidents import MisissuanceWorkload
from repro.workloads.traffic import UplinkTrafficWorkload


def test_ca_to_log_to_monitor_to_dns_chain(fresh_logs, now):
    """A certificate issued by a CA is visible to a log monitor, whose
    DNS names match what the certificate leaked."""
    from repro.x509.ca import CertificateAuthority, IssuanceRequest

    ca = CertificateAuthority("Chain CA", key_bits=256)
    log = fresh_logs["Google Icarus log"]
    ca.issue(IssuanceRequest(("secret-subdomain.example.net",)), [log], now)
    monitor = StreamingMonitor("watcher", SeededRng(1))
    observations = monitor.observe(log)
    assert observations[0].dns_names == ["secret-subdomain.example.net"]
    assert observations[0].observed_at > now


def test_traffic_to_bro_to_adoption_roundtrip():
    """Connections -> analyzer -> aggregates; totals conserved."""
    workload = UplinkTrafficWorkload(
        connections_per_day=150,
        start=date(2017, 9, 1), end=date(2017, 9, 10), seed=3,
    )
    connections = list(workload.stream())
    analyzer = BroSctAnalyzer(workload.logs)
    stats = adoption.aggregate(analyzer.analyze_stream(connections))
    assert stats.total == sum(c.weight for c in connections)
    assert 0.25 < stats.share("with_any_sct") < 0.40


def test_scan_and_traffic_views_disagree_as_in_paper():
    """Section 3.3's contrast: the per-certificate view is dominated by
    logs that are nearly invisible in the per-connection view."""
    population = HostingWorkload(scale=1 / 100_000, seed=5).build()
    scanner = TlsScanner(population.resolver(), population.endpoints)
    records = scanner.scan(population.domains, utc_datetime(2018, 5, 18))
    names = {log.log_id: log.name for log in population.logs.values()}
    stats = serversupport.analyze_scan(records, names)
    nimbus_cert_share = stats.per_cert_log_shares.get(
        "Cloudflare Nimbus2018 Log", 0.0
    )
    assert nimbus_cert_share > 0.5
    # In traffic (Table 1), Nimbus2018 is ~0.05 % — the paper's point.


def test_leakage_feeds_enumeration():
    corpus = DomainWorkload(scale=1 / 50_000, seed=6).build()
    stats = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
    plan, truth, report = enumeration.run_enumeration_experiment(
        stats, corpus, seed=7
    )
    assert report.candidate_count > 0
    assert 0 < report.discovered < report.answered
    assert report.new_unknown <= report.discovered


def test_misissuance_audit_over_bro_observed_certs():
    """The paper audited certificates seen in traffic; wire the incident
    corpus through connections and audit what the analyzer saw."""
    corpus = MisissuanceWorkload(healthy_certificates=30, seed=8).build()
    now = utc_datetime(2018, 5, 1)
    connections = [
        TlsConnection(
            time=now,
            server_name=pair.final_certificate.subject_cn,
            server_ip="192.0.2.1",
            certificate=pair.final_certificate,
        )
        for pair in corpus.pairs
    ]
    analyzer = BroSctAnalyzer(corpus.logs)
    seen_certs = [obs.certificate for obs in analyzer.analyze_stream(connections)]
    report = misissuance.audit_certificates(
        seen_certs, corpus.issuer_key_hashes(), corpus.logs
    )
    assert report.invalid_certificate_count == 16


def test_honeypot_uses_shared_log_infrastructure():
    logs = build_default_logs(with_capacities=False, key_bits=256)
    before = logs["Cloudflare Nimbus2018 Log"].size
    result = CtHoneypotExperiment(seed=9, logs=logs).run()
    assert logs["Cloudflare Nimbus2018 Log"].size == before + 11
    # Honeypot precerts are discoverable through the standard read API.
    entries = logs["Cloudflare Nimbus2018 Log"].get_entries(
        before, before + 10
    )
    leaked = {entry.certificate.subject_cn for entry in entries}
    assert leaked == {domain.fqdn for domain in result.domains}


def test_honeypot_names_invisible_to_leakage_wordlists():
    """Honeypot labels are random: no wordlist would guess them — the
    premise of building block (i)."""
    result = CtHoneypotExperiment(seed=10).run()
    labels = {domain.fqdn.split(".")[0] for domain in result.domains}
    from repro.workloads.wordlists import dnsrecon_wordlist

    words = set(dnsrecon_wordlist(["www", "mail", "api"] , seed=2))
    assert not labels & words


def test_intermediate_ca_chain_through_ct(fresh_logs, now):
    """A hierarchy intermediate issues into CT; the embedded SCT
    validates with the intermediate's key hash and the chain validates
    to the root — the structure behind the paper's Issuer-CN grouping."""
    from repro.ct.verification import validate_embedded_scts
    from repro.x509.ca import IssuanceRequest
    from repro.x509.chain import CaHierarchy, build_chain, validate_chain

    hierarchy = CaHierarchy("ChainBrand")
    intermediate = hierarchy.add_intermediate(
        "ChainBrand CA 1", not_before=utc_datetime(2016, 1, 1)
    )
    pair = intermediate.issue(
        IssuanceRequest(("deep.example",)),
        [fresh_logs["Google Pilot log"], fresh_logs["Google Icarus log"]],
        now,
    )
    keys = {log.log_id: log.key for log in fresh_logs.values()}
    sct_result = validate_embedded_scts(
        pair.final_certificate, intermediate.issuer_key_hash, keys
    )
    assert sct_result.all_valid
    chain = build_chain(pair.final_certificate, hierarchy)
    chain_result = validate_chain(
        chain,
        {hierarchy.root_certificate.subject_cn: hierarchy.root_key},
        now,
        known_keys=hierarchy.keys_by_subject(),
    )
    assert chain_result.valid, chain_result.reasons
    # The log entry is attributed to the brand, as the paper groups it.
    assert fresh_logs["Google Pilot log"].entries[-1].certificate.issuer_org == "ChainBrand"
