"""Failure-injection tests: overload, disqualification, broken DNS."""

import pytest

from repro.ct.log import CTLog, LogDisqualifiedError, LogOverloadedError
from repro.ct.loglist import log_key
from repro.ct.policy import ChromeCTPolicy
from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, Rcode, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


def test_log_overload_then_disqualification_breaks_policy(fresh_logs, now):
    """The Nimbus scenario: overload -> disqualification -> previously
    compliant certificates lose policy compliance."""
    ca = CertificateAuthority("Victim CA", key_bits=256)
    nimbus = fresh_logs["Cloudflare Nimbus2018 Log"]
    nimbus.capacity_per_day = 3
    pair = ca.issue(
        IssuanceRequest(("site.example",), lifetime_days=90),
        [fresh_logs["Google Pilot log"], nimbus],
        now,
    )
    policy = ChromeCTPolicy(fresh_logs)
    assert policy.evaluate(pair.final_certificate, list(pair.scts)).compliant

    # Mass submission (the "final certificates flood" of Section 3.4).
    flood_ca = CertificateAuthority("Flood CA", key_bits=256)
    for i in range(10):
        flood_ca.issue(IssuanceRequest((f"flood{i}.example",)), [nimbus], now)
    assert nimbus.was_overloaded()

    nimbus.disqualify()
    verdict = policy.evaluate(pair.final_certificate, list(pair.scts))
    assert not verdict.compliant


def test_strict_log_rejects_mid_burst(now):
    log = CTLog(
        name="Fragile", operator="T", key=log_key("Fragile", 256),
        capacity_per_day=2, strict_capacity=True,
    )
    ca = CertificateAuthority("Burst CA", key_bits=256)
    issued = 0
    rejected = 0
    for i in range(5):
        try:
            ca.issue(IssuanceRequest((f"b{i}.example",)), [log], now)
            issued += 1
        except LogOverloadedError:
            rejected += 1
    assert issued == 2
    assert rejected == 3
    assert log.size == 2


def test_disqualified_log_rejects_everything(now):
    log = CTLog(name="Dead", operator="T", key=log_key("Dead", 256))
    log.disqualify()
    ca = CertificateAuthority("DQ CA", key_bits=256)
    with pytest.raises(LogDisqualifiedError):
        ca.issue(IssuanceRequest(("x.example",)), [log], now)


def test_ca_workload_survives_strict_log_overload():
    """The evolution workload records rejections instead of crashing."""
    from datetime import date

    from repro.ct.loglist import build_default_logs
    from repro.workloads.ca_profiles import CaLoggingWorkload

    logs = build_default_logs(with_capacities=False, key_bits=256)
    nimbus = logs["Cloudflare Nimbus2018 Log"]
    nimbus.strict_capacity = True
    workload = CaLoggingWorkload(
        scale=1 / 500_000,
        start=date(2018, 3, 1),
        end=date(2018, 4, 15),
        seed=2,
        logs=logs,
    )
    # The workload caps Nimbus to its scaled capacity.
    result = workload.run()
    assert result.rejected_submissions > 0
    assert result.issued  # the rest of the ecosystem kept working


def test_resolver_handles_cname_loop(now):
    universe = DnsUniverse()
    zone = Zone("loop.example")
    zone.add_simple("a.loop.example", RecordType.CNAME, "b.loop.example")
    zone.add_simple("b.loop.example", RecordType.CNAME, "a.loop.example")
    universe.add_zone(zone)
    resolver = RecursiveResolver("r", universe)
    result = resolver.resolve("a.loop.example", RecordType.A, now=now)
    assert result.rcode is Rcode.SERVFAIL


def test_resolver_handles_self_referential_cname(now):
    universe = DnsUniverse()
    zone = Zone("self.example")
    zone.add_simple("x.self.example", RecordType.CNAME, "x.self.example")
    universe.add_zone(zone)
    resolver = RecursiveResolver("r", universe)
    result = resolver.resolve("x.self.example", RecordType.A, now=now)
    assert result.rcode is Rcode.SERVFAIL


def test_empty_zone_answers_nxdomain(now):
    universe = DnsUniverse()
    universe.add_zone(Zone("empty.example"))
    resolver = RecursiveResolver("r", universe)
    result = resolver.resolve("www.empty.example", RecordType.A, now=now)
    assert result.rcode is Rcode.NXDOMAIN


def test_scanner_tolerates_dead_dns():
    from repro.tls.scanner import TlsScanner

    universe = DnsUniverse()
    resolver = RecursiveResolver("r", universe)
    scanner = TlsScanner(resolver, {})
    assert scanner.scan(["ghost.example"], utc_datetime(2018, 5, 18)) == []
