"""Split-view serving and wire-level STH gossip, end to end.

An equivocating operator mounts a :class:`~repro.ct.server.SplitView`:
the honest log plus a fully servable twin, partitioned per client
identity (the ``X-Repro-Client`` header).  The suites here prove the
attack is *served* faithfully — both views answer the full read API —
and then *caught*: independent storm clients gossip the STHs they saw
and :class:`~repro.ct.auditor.GossipPool` pins the fork, surfacing a
:class:`~repro.workloads.incidents.SplitViewIncident`.
"""

from datetime import timedelta

import pytest

from repro.ct.auditor import GossipPool, make_split_view_log
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import HttpTransport, LightweightMonitor
from repro.ct.server import (
    LogClient,
    LogServer,
    SplitView,
    default_split_partition,
    harvest_log,
)
from repro.util.timeutil import utc_datetime
from repro.workloads.incidents import split_view_incidents
from repro.workloads.loadgen import (
    LoadStormConfig,
    gossip_storm_sths,
    plan_storm,
    run_storm,
)
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


def _build_log(name="Gossip Log", entries=12):
    log = CTLog(name=name, operator="Gossip", key=log_key(name, 256))
    ca = CertificateAuthority("Gossip CA", key_bits=256)
    for i in range(entries):
        ca.issue(
            IssuanceRequest((f"site{i}.example",)),
            [log],
            NOW + timedelta(seconds=i),
        )
    return log


@pytest.fixture()
def split_served():
    log = _build_log()
    twin = make_split_view_log(log, fork_at=log.size // 2, pad_to=log.size)
    with LogServer(SplitView(log, twin)) as server:
        yield server, log, twin


def test_default_partition_is_deterministic():
    assert default_split_partition("") is False  # anonymous -> honest
    assert default_split_partition("browser-0") is False
    assert default_split_partition("browser-1") is True
    assert default_split_partition("browser-2") is False
    # Non-numeric tails hash stably.
    assert default_split_partition("alice") == default_split_partition("alice")


def test_split_view_requires_matching_slug():
    log = _build_log()
    other = _build_log(name="Other Log", entries=3)
    with pytest.raises(ValueError):
        SplitView(log, other)


def test_partitioned_clients_see_different_roots(split_served):
    server, log, twin = split_served
    url = server.log_url(log.name)
    honest_client = LogClient(url, client_id="browser-0")
    victim_client = LogClient(url, client_id="browser-1")
    honest_sth = honest_client.get_signed_tree_head()
    victim_sth = victim_client.get_signed_tree_head()
    assert honest_sth.tree_size == victim_sth.tree_size == log.size
    assert honest_sth.root_hash != victim_sth.root_hash
    assert honest_sth.root_hash == log.tree.root()
    assert victim_sth.root_hash == twin.tree.root()
    # Both STHs verify under the shared log key: signatures alone
    # cannot expose the equivocation — only gossip can.
    assert honest_sth.verify(log.key)
    assert victim_sth.verify(log.key)


def test_anonymous_client_gets_honest_view(split_served):
    server, log, _twin = split_served
    client = LogClient(server.log_url(log.name))
    assert client.get_signed_tree_head().root_hash == log.tree.root()


def test_twin_view_is_fully_servable(split_served):
    server, log, twin = split_served
    victim_client = LogClient(
        server.log_url(log.name), client_id="browser-1"
    )
    harvested = harvest_log(victim_client, name=log.name)
    assert harvested.tree.root() == twin.tree.root()
    assert harvested.size == twin.size


def test_submissions_land_on_the_honest_log(split_served):
    server, log, twin = split_served
    ca = CertificateAuthority("Gossip Submit CA", key_bits=256)
    scratch = CTLog(
        name="gossip-scratch", operator="G", key=log_key("gossip-scratch", 256)
    )
    pair = ca.issue(IssuanceRequest(("new.example",)), [scratch], NOW)
    victim_client = LogClient(
        server.log_url(log.name), client_id="browser-1"
    )
    sct = victim_client.add_pre_chain(
        pair.precertificate, ca.issuer_key_hash
    )
    assert sct is not None
    assert log.size == 13
    assert twin.size == 12


def test_lightweight_monitor_catches_the_swap(split_served):
    server, log, _twin = split_served
    url = server.log_url(log.name)
    monitor = LightweightMonitor("lw", ["site3.example"], key=log.key)
    # First poll rides the honest partition and verifies cleanly …
    honest = HttpTransport(url, log.name, client_id="client-0")
    assert len(monitor.poll(honest, NOW + timedelta(hours=1))) == 1
    assert monitor.clean
    # … then the operator flips this client onto the twin: the new STH
    # cannot be proven consistent with the verified history.
    victim = HttpTransport(url, log.name, client_id="client-1")
    assert monitor.poll(victim, NOW + timedelta(hours=2)) == []
    assert not monitor.clean
    assert monitor.findings[0].kind == "inconsistent-history"


def test_storm_gossip_detects_split_view(split_served):
    server, log, twin = split_served
    config = LoadStormConfig(
        seed=2018, browsers=6, monitors=2, submitters=0,
        audits_per_browser=2, pages_per_monitor=2,
    )
    plans = plan_storm(config, log)
    report = run_storm(plans, server.log_url(log.name), executor="thread")
    assert report.transport_errors == 0
    pool = GossipPool()
    findings = gossip_storm_sths(report, pool, log.name)
    assert findings, "partitioned storm clients must expose the fork"
    assert pool.sths_gossiped >= config.clients
    incidents = split_view_incidents(pool)
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.log_name == log.name
    assert incident.tree_size == log.size
    assert {incident.first_root, incident.second_root} == {
        log.tree.root().hex(), twin.tree.root().hex()
    }
    payload = incident.to_dict()
    assert payload["kind"] == "split-view"
    assert payload["first_reporter"] != payload["second_reporter"]


def test_honest_mount_still_gossips_clean():
    log = _build_log(name="Honest Gossip Log")
    with LogServer(log) as server:
        config = LoadStormConfig(
            seed=7, browsers=4, monitors=2, submitters=0,
            audits_per_browser=2, pages_per_monitor=2,
        )
        report = run_storm(
            plan_storm(config, log), server.log_url(log.name),
            executor="thread",
        )
    assert report.transport_errors == 0
    pool = GossipPool()
    assert gossip_storm_sths(report, pool, log.name) == []
    assert pool.clean
    assert split_view_incidents(pool) == []


def test_mini_monitor_swarm_lightweight_beats_replay():
    from repro.workloads.loadgen import (
        MonitorSwarmConfig,
        MonitorSwarm,
        plan_swarm_subscriptions,
    )

    log = _build_log(name="Swarm Mini Log", entries=20)
    pool = [
        name for entry in log.entries
        for name in entry.certificate.dns_names()
    ]
    config = MonitorSwarmConfig(
        seed=11, monitors=6, domains_per_monitor=2, workers=4
    )
    subscriptions = plan_swarm_subscriptions(config, pool)
    with LogServer(log) as server:
        url = server.log_url(log.name)
        light = MonitorSwarm(
            url, log.name, subscriptions, mode="lightweight",
            key=log.key, workers=4,
        )
        replay = MonitorSwarm(
            url, log.name, subscriptions, mode="replay", workers=4,
        )
        assert light.poll(NOW) >= 6
        replay.poll(NOW)
    assert light.missed_subscribed(log) == 0
    assert replay.missed_subscribed(log) == 0
    assert light.findings() == []
    light_wire = light.wire_totals()
    replay_wire = replay.wire_totals()
    # Replay members each pull all 20 bodies; light-weight members pull
    # only their subscribed entries.
    assert replay_wire["entries"] == 6 * log.size
    assert light_wire["entries"] < replay_wire["entries"]
    assert light_wire["bytes"] < replay_wire["bytes"]
