"""End-to-end distributed tracing across the HTTP boundary.

A seeded storm with tracing on runs against a live sequencer-backed
:class:`~repro.ct.server.LogServer`; the trace context crosses the
wire in the ``X-Repro-Traceparent`` header, the sequencer links every
merge back to the submissions it folded, and a traced light-weight
monitor closes the loop.  From span events alone we must be able to
rebuild every certificate's full lifecycle — submit → SCT → merge →
inclusion → detection — with zero orphan spans, and replaying the
event log must rebuild an identical :class:`~repro.obs.TraceStore`.
"""

import json
import urllib.error
import urllib.request
from datetime import datetime, timedelta, timezone

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import HttpTransport, LightweightMonitor
from repro.ct.server import LogServer
from repro.ct.storage import certificate_from_dict
from repro.obs import (
    EventLog,
    SpanTracer,
    TelemetryServer,
    TraceStore,
    certificate_lifecycles,
    render_lifecycles,
)
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SEED = 2018


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def traced_run():
    """One traced storm + monitor poll, shared across the module."""
    events = EventLog(tail_size=16384)
    tracer = SpanTracer(seed=SEED, name="lifecycle", events=events)
    log = CTLog(
        name="Lifecycle Log", operator="Repro", key=log_key("Lifecycle Log", 256)
    )
    ca = CertificateAuthority("Lifecycle CA", key_bits=256)
    issued = utc_datetime(2018, 5, 1, 12, 0)
    for i in range(4):
        ca.issue(
            IssuanceRequest((f"seed{i}.lifecycle.example",)), [log],
            issued + timedelta(minutes=i),
        )
    config = LoadStormConfig(seed=SEED, browsers=2, monitors=1, submitters=2)
    plans = plan_storm(config, log)
    chains = [
        certificate_from_dict(dict(op.chain[0])).dns_names()
        for plan in plans
        for op in plan.ops
        if op.kind == "add_pre_chain" and op.chain
    ]
    # The monitor watches every claimed name; lifecycles key off each
    # certificate's primary (first) name, mirroring the span attrs.
    all_names = sorted({name for names in chains for name in names})
    submitted = sorted({names[0] for names in chains if names})
    with LogServer(
        log, events=events, merge_interval=0.05, tracer=tracer
    ) as server:
        report = run_storm(
            plans, server.log_url(log.name), trace_seed=SEED
        )
        server.drain_writes()
        monitor = LightweightMonitor(
            "itest-monitor", all_names, key=log.key, tracer=tracer
        )
        transport = HttpTransport(
            server.log_url(log.name),
            log.name,
            timeout=30.0,
            client_id="itest-monitor",
            tracer=tracer,
        )
        monitor.poll(transport, datetime.now(timezone.utc))
    for result in report.results:
        for record in result.spans:
            tracer.record_remote(record)
    store = TraceStore()
    store.add_many(tracer.to_records())
    return {
        "store": store,
        "events": events,
        "report": report,
        "submitted": submitted,
    }


class TestCrossBoundaryAssembly:
    def test_no_orphan_spans(self, traced_run):
        # Every server-side span's parent must resolve to a shipped
        # client span in the same trace: the header crossed the wire.
        assert traced_run["store"].orphan_spans() == []

    def test_server_spans_parented_by_client_spans(self, traced_run):
        store = traced_run["store"]
        spans = store.all_spans()
        by_id = {
            (s["trace_id"], s["span_id"]): s for s in spans
        }
        server_spans = [s for s in spans if s["kind"] == "server"]
        assert server_spans, "storm produced no server spans"
        for span in server_spans:
            parent = by_id[(span["trace_id"], span["parent_span_id"])]
            assert parent["kind"] == "client"

    def test_merge_spans_link_submissions(self, traced_run):
        spans = traced_run["store"].all_spans()
        merges = [s for s in spans if s["name"] == "sequencer.merge"]
        assert merges, "sequencer never merged under a span"
        linked = {
            (link["trace_id"], link["span_id"])
            for merge in merges
            for link in merge["links"]
        }
        submissions = {
            (s["trace_id"], s["span_id"])
            for s in spans
            if s["name"] == "server.add-pre-chain"
        }
        assert linked == submissions

    def test_replay_rebuilds_identical_store(self, traced_run):
        events = traced_run["events"]
        replayed = TraceStore.from_events(events.tail(events.emitted))
        assert replayed == traced_run["store"]

    def test_every_submitted_domain_completes_the_chain(self, traced_run):
        lifecycles = certificate_lifecycles(traced_run["store"])
        assert [item["domain"] for item in lifecycles] == traced_run[
            "submitted"
        ]
        for item in lifecycles:
            assert item["complete"], item
            # Timeline is causally ordered within each certificate.
            assert 0.0 <= item["sct_ms"] <= item["inclusion_ms"]
            assert item["merge_ms"] <= item["inclusion_ms"]
            assert item["detection_ms"] >= 0.0

    def test_render_mentions_every_domain(self, traced_run):
        lifecycles = certificate_lifecycles(traced_run["store"])
        text = render_lifecycles(lifecycles)
        for domain in traced_run["submitted"]:
            assert domain in text
        count = len(lifecycles)
        assert f"{count}/{count} certificates completed" in text

    def test_storm_results_unaffected_by_tracing(self, traced_run):
        # Tracing observes the storm, it does not change it.
        report = traced_run["report"]
        assert all(result.errors == [] for result in report.results)
        assert all(
            op.status == 200 for result in report.results for op in result.ops
        )


class TestSpansEndpoint:
    def test_without_trace_source_404s(self):
        with TelemetryServer(lambda: {}) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/spans")
            assert excinfo.value.code == 404

    def test_summary_and_per_trace_fetch(self, traced_run):
        store = traced_run["store"]
        with TelemetryServer(lambda: {}, trace_source=lambda: store) as server:
            summary = _get(server.url + "/spans")
            listed = {row["trace_id"]: row["spans"] for row in summary["traces"]}
            assert sorted(listed) == list(store.trace_ids())
            trace_id = store.trace_ids()[0]
            payload = _get(server.url + "/spans?trace_id=" + trace_id)
            assert payload["trace_id"] == trace_id
            assert payload["spans"] == store.spans_for(trace_id)
            assert len(payload["spans"]) == listed[trace_id]

    def test_unknown_trace_id_404s(self, traced_run):
        store = traced_run["store"]
        with TelemetryServer(lambda: {}, trace_source=lambda: store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/spans?trace_id=" + "f" * 32)
            assert excinfo.value.code == 404
