"""Live LogServer: real sockets, harvest parity, storm bursts.

The acceptance bar for the served-log layer: all five RFC 6962
endpoints answer over genuine HTTP (including a 400 and a 429 on the
wire, never a bare 500 page), a corpus harvested purely through the
HTTP API is bit-identical to one read from the in-process
:class:`~repro.ct.log.CTLog`, and a seeded load-storm burst completes
cleanly under both executor modes of CI's matrix.
"""

import base64
import json
import os
import urllib.error
import urllib.request
from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.merkle import leaf_hash, verify_inclusion_proof
from repro.ct.server import (
    HarvestedLog,
    HarvestMismatchError,
    LogClient,
    LogClientError,
    LogServer,
    harvest_log,
)
from repro.ct.storage import dump_log
from repro.dataset import CertCorpus
from repro.obs import EventLog, MetricsRegistry
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)

# CI's log-server-smoke job pins one executor per matrix leg via
# REPRO_EXECUTOR; locally both run.
EXECUTORS = (
    [os.environ["REPRO_EXECUTOR"]]
    if os.environ.get("REPRO_EXECUTOR")
    else ["process", "thread"]
)


def _build_log(name="Live Served Log", entries=12, **kwargs):
    log = CTLog(name=name, operator="Live", key=log_key(name, 256), **kwargs)
    ca = CertificateAuthority("Live Serve CA", key_bits=256)
    for i in range(entries):
        ca.issue(
            IssuanceRequest(
                (f"live{i}.example", f"www.live{i}.example")
            ),
            [log],
            NOW + timedelta(seconds=i),
        )
    return log


def _precerts(count, tag):
    ca = CertificateAuthority(f"Live Submit CA {tag}", key_bits=256)
    scratch = CTLog(
        name=f"live-scratch-{tag}",
        operator="Live",
        key=log_key(f"live-scratch-{tag}", 256),
    )
    pairs = [
        ca.issue(IssuanceRequest((f"s{i}.{tag}.example",)), [scratch], NOW)
        for i in range(count)
    ]
    return [pair.precertificate for pair in pairs], ca.issuer_key_hash


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def test_all_five_endpoints_over_real_http():
    log = _build_log()
    with LogServer(log, clock=lambda: NOW) as server:
        base = server.log_url(log.name)
        client = LogClient(base)

        sth = client.get_sth()
        assert sth["tree_size"] == 12
        assert base64.b64decode(sth["sha256_root_hash"]) == log.tree.root()

        entries = client.get_entries(0, 11)
        assert [entry.leaf_input for entry in entries] == [
            entry.leaf_input for entry in log.entries
        ]

        leaf = log.entries[7].leaf_input
        index, path = client.get_proof_by_hash(leaf_hash(leaf), 12)
        assert index == 7
        assert verify_inclusion_proof(leaf, 7, 12, path, log.tree.root())

        proof = client.get_sth_consistency(5, 12)
        assert proof == log.tree.consistency_proof(5, 12)

        (precert,), issuer_key_hash = _precerts(1, "live")
        sct = client.add_pre_chain(precert, issuer_key_hash)
        assert sct.log_id == log.log_id
        assert log.size == 13

        # The index page lists the mount.
        status, payload = _get_json(server.url)
        assert status == 200
        assert payload["logs"][0]["slug"] == "live-served-log"


def test_errors_arrive_as_json_over_the_wire():
    log = _build_log(entries=4, capacity_per_day=4, strict_capacity=True)
    with LogServer(log, clock=lambda: NOW) as server:
        base = server.log_url(log.name)

        # 400: malformed range, straight HTTP (no client wrapper).
        try:
            urllib.request.urlopen(
                f"{base}/ct/v1/get-entries?start=9&end=2", timeout=10
            )
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            payload = json.loads(exc.read().decode())
            assert payload["code"] == 400 and "invalid range" in payload["error"]

        # 429: the log's daily capacity is exhausted by the seed.
        (precert,), issuer_key_hash = _precerts(1, "overload")
        client = LogClient(base)
        with pytest.raises(LogClientError) as excinfo:
            client.add_pre_chain(precert, issuer_key_hash)
        assert excinfo.value.status == 429
        assert excinfo.value.body["code"] == 429


def test_http_harvest_is_bit_identical_to_in_process_log(tmp_path):
    log = _build_log(entries=10)
    with LogServer(log, clock=lambda: NOW) as server:
        client = LogClient(server.log_url(log.name))
        replica = harvest_log(
            client, name=log.name, operator=log.operator, page_size=3
        )

    assert isinstance(replica, HarvestedLog)
    assert replica.size == log.size
    assert replica.tree.root() == log.tree.root()
    assert replica.entries == log.entries

    # Byte-identical persisted dumps...
    direct_path = tmp_path / "direct.jsonl"
    harvested_path = tmp_path / "harvested.jsonl"
    dump_log(log, direct_path)
    dump_log(replica, harvested_path)
    assert harvested_path.read_bytes() == direct_path.read_bytes()

    # ...and an identical columnar corpus.
    direct = CertCorpus.from_logs([log])
    via_http = CertCorpus.from_logs([replica])
    assert len(direct) == len(via_http) == 10
    for column in (
        "issuer_org", "serial", "day", "log_name", "month",
        "is_precert", "names",
    ):
        assert getattr(direct, column) == getattr(via_http, column)


def test_harvest_detects_truncated_replica():
    log = _build_log(entries=6)
    with LogServer(log, clock=lambda: NOW) as server:

        class LyingClient(LogClient):
            def get_entries(self, start, end):
                entries = super().get_entries(start, end)
                return entries[:-1] if end >= 5 else entries

        client = LyingClient(server.log_url(log.name))
        with pytest.raises(HarvestMismatchError):
            harvest_log(client, page_size=6)


def test_harvest_pinned_to_sth_while_log_grows_concurrently():
    """TOCTOU regression: appends landing mid-harvest must not leak in.

    Every ``get-entries`` round triggers a concurrent submission over
    the same HTTP server before the page is fetched, so the served
    tree is strictly larger than the STH the harvest pinned up front.
    The replica must stop at the pinned tree size and still verify
    against the pinned root — growth after the STH fetch is invisible.
    """
    log = _build_log(entries=9)
    precerts, issuer_key_hash = _precerts(6, "toctou")
    with LogServer(log, clock=lambda: NOW) as server:
        base = server.log_url(log.name)
        submitter = LogClient(base)

        class GrowingClient(LogClient):
            def __init__(self, url):
                super().__init__(url)
                self.pending = list(precerts)

            def get_entries(self, start, end):
                if self.pending:  # the log grows before every page
                    submitter.add_pre_chain(
                        self.pending.pop(), issuer_key_hash
                    )
                return super().get_entries(start, end)

        client = GrowingClient(base)
        pinned = int(client.get_sth()["tree_size"])
        assert pinned == 9

        replica = harvest_log(
            client, name=log.name, operator=log.operator, page_size=2
        )

    assert replica.size == pinned  # not one entry past the pinned STH
    assert [entry.index for entry in replica.entries] == list(range(pinned))
    assert replica.entries == log.entries[:pinned]
    assert log.size > pinned  # the concurrent appends really landed
    # harvest_log verified the rebuilt root against the pinned STH; a
    # second harvest after the growth settles sees the longer log.
    with LogServer(log, clock=lambda: NOW) as server:
        settled = harvest_log(
            LogClient(server.log_url(log.name)),
            name=log.name,
            operator=log.operator,
            page_size=4,
        )
    assert settled.size == log.size
    assert settled.tree.root() == log.tree.root()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_storm_burst_under_both_executors(executor):
    log = _build_log(entries=8)
    config = LoadStormConfig(
        seed=11,
        browsers=2,
        monitors=1,
        submitters=1,
        audits_per_browser=3,
        pages_per_monitor=2,
        page_size=4,
        submissions_per_submitter=3,
        # One await_inclusion op fans out into many polls; keep the
        # request count exact so the middleware tally below stays 1:1.
        await_inclusion=False,
    )
    plans = plan_storm(config, log)
    metrics = MetricsRegistry()
    events = EventLog()
    with LogServer(
        log, clock=lambda: NOW, metrics=metrics, events=events
    ) as server:
        report = run_storm(
            plans, server.log_url(log.name), executor=executor, workers=4
        )

    assert report.executor == executor
    assert report.transport_errors == 0
    assert report.verification_failures == 0
    assert report.submissions_ok == config.planned_submissions
    assert report.reads_ok == sum(plan.reads for plan in plans)
    assert log.size == 8 + config.planned_submissions

    # The middleware saw every request the clients made.
    total_ops = sum(len(result.ops) for result in report.results)
    served = sum(
        count
        for key, count in metrics.snapshot().counters.items()
        if key.startswith("log_server.responses")
    )
    assert served == total_ops == events.emitted
