"""Observability under fire: metrics snapshots of fault-injected runs.

The acceptance bar for the instrumentation layer: attach a registry to
a sharded, fault-injected run and the resulting snapshot must account
for the run *exactly* — per-shard counters sum to the serial totals,
failed-shard labels enumerate the same shards the degradation report
does, and attempt counters match what the checkpoint sidecar's
``fault_stats()`` recovers from disk.  The analysis output itself must
stay bit-identical to the uninstrumented run.
"""

import pytest

from repro.core import leakage
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.storage import HarvestCheckpoint
from repro.obs import MetricsRegistry, MetricsSnapshot, SpanTracer
from repro.pipeline import PipelineEngine, analyze_log_names
from repro.pipeline.harvest import _log_leakage_task, log_entry_names
from repro.resilience import DegradedResult, FlakyLog, RetryPolicy
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

SHARD_SIZE = 8  # 48 entries -> 6 shards


@pytest.fixture(scope="module")
def fault_log():
    log = CTLog(name="Obs Target", operator="T", key=log_key("Obs Target", 256))
    ca = CertificateAuthority("Obs CA", key_bits=256)
    now = utc_datetime(2018, 5, 1, 12, 0)
    for i in range(48):
        ca.issue(
            IssuanceRequest((f"host{i}.obs.example", f"alt{i}.obs.example")),
            [log],
            now,
        )
    return log


@pytest.fixture(scope="module")
def fault_free(fault_log):
    return analyze_log_names(fault_log, PipelineEngine(workers=1, shard_size=SHARD_SIZE))


def _flaky(log, seed=8):
    return FlakyLog(
        log,
        SeededRng(seed, "obs-faults"),
        failure_rate=0.2,
        max_consecutive=2,
        methods=("get_entries",),
    )


def _fail_tail(method, args):
    """Permanently dead entry fetches at index >= 32 (shards 4 and 5)."""
    return method == "get_entries" and args[0] >= 32


def _shard_tasks(log):
    return [
        (log, start, min(start + SHARD_SIZE, log.size))
        for start in range(0, log.size, SHARD_SIZE)
    ]


class TestSerialParallelCounterParity:
    """Worker-local snapshots must fold back to the serial totals."""

    def test_instrumented_serial_equals_uninstrumented(self, fault_log, fault_free):
        registry = MetricsRegistry()
        engine = PipelineEngine(
            workers=1, shard_size=SHARD_SIZE, metrics=registry
        )
        assert analyze_log_names(fault_log, engine) == fault_free
        snap = registry.snapshot()
        assert snap.counter("pipeline.shards_planned") == 6
        assert snap.counter("pipeline.shards_completed") == 6
        assert snap.counter("pipeline.shard_attempts") == 6
        assert snap.histogram_count("pipeline.shard_seconds") == 6
        assert snap.histogram_count("pipeline.reduce_seconds") == 1

    def test_flaky_parallel_run_accounts_for_itself(self, fault_log, fault_free):
        registry = MetricsRegistry()
        engine = PipelineEngine(
            workers=3,
            shard_size=SHARD_SIZE,
            executor="thread",
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.0),
            metrics=registry,
            tracer=SpanTracer(),
        )
        flaky = _flaky(fault_log)
        result = analyze_log_names(flaky, engine)
        assert result == fault_free  # faults + retries change no bytes
        assert flaky.faults_injected > 0
        snap = registry.snapshot()
        assert snap.counter("pipeline.shards_completed") == 6
        # Every retry is a re-attempt of a completed shard: the
        # attempt counter decomposes exactly.
        assert snap.counter("pipeline.shard_attempts") == 6 + snap.counter(
            "pipeline.shard_retries"
        )
        assert snap.counter("pipeline.retries_total") == snap.counter(
            "pipeline.shard_retries"
        )
        assert snap.counter("pipeline.shards_failed") == 0
        # Per-shard timings crossed the pool boundary with the results.
        assert snap.histogram_count("pipeline.shard_seconds") == 6
        assert snap.histogram_count("pipeline.shard_queue_wait_seconds") == 6
        spans = [span.name for span in engine.tracer.spans]
        assert spans == [
            "pipeline.map_reduce",
            "pipeline.map",
            "pipeline.reduce",
        ]


class TestDegradedRunMetrics:
    """--metrics-out under on_error=degrade: the snapshot names exactly
    the shards the DegradationReport enumerates."""

    def test_failure_labels_match_report(self, fault_log, tmp_path):
        registry = MetricsRegistry()
        engine = PipelineEngine(
            workers=3,
            shard_size=SHARD_SIZE,
            executor="thread",
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            on_error="degrade",
            metrics=registry,
        )
        flaky = FlakyLog(
            fault_log,
            SeededRng(1, "obs-degrade"),
            failure_rate=0.0,
            fail_when=_fail_tail,
        )
        outcome = analyze_log_names(flaky, engine)
        assert isinstance(outcome, DegradedResult)
        assert outcome.report.failed_indices == [4, 5]

        # Same snapshot the CLI writes for --metrics-out.
        path = registry.snapshot().write(tmp_path / "metrics.json")
        snap = MetricsSnapshot.from_json(path.read_text())

        failed_labels = sorted(snap.labeled("pipeline.shard_failures"))
        assert failed_labels == [
            f"{{shard={i}}}" for i in outcome.report.failed_indices
        ]
        assert snap.counter("pipeline.shards_failed") == len(
            outcome.report.failed_indices
        )
        assert snap.counter("pipeline.shards_completed") == 4
        # Two dead shards, two attempts each under the retry budget.
        assert snap.counter("pipeline.failed_shard_attempts") == 4
        assert snap.counter("pipeline.retries_total") == outcome.report.retries


class TestCheckpointAccounting:
    """Metrics vs the checkpoint sidecar: two views of one run agree."""

    def _checkpoint(self, tmp_path, registry):
        return HarvestCheckpoint(
            tmp_path / "run.checkpoint",
            pass_name="obs-test",
            shard_size=SHARD_SIZE,
            tree_size=48,
            root_hash="obs",
            metrics=registry,
        )

    def test_attempts_match_fault_stats(self, fault_log, fault_free, tmp_path):
        registry = MetricsRegistry()
        store = self._checkpoint(tmp_path, registry)
        engine = PipelineEngine(
            workers=3,
            shard_size=SHARD_SIZE,
            executor="thread",
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.0),
            metrics=registry,
        )
        partials = engine.map(
            _log_leakage_task,
            _shard_tasks(_flaky(fault_log)),
            checkpoint=store,
            encode=leakage.encode_leakage_partial,
            decode=leakage.decode_leakage_partial,
        )
        assert leakage.reduce_name_partials(list(partials)) == fault_free

        snap = registry.snapshot()
        stats = store.fault_stats()
        # The sidecar on disk and the in-memory snapshot describe the
        # same run: attempt totals recovered from either must agree.
        assert stats["shards"] == snap.counter("pipeline.shards_completed") == 6
        assert stats["total_attempts"] == snap.counter("pipeline.shard_attempts")
        assert snap.counter("checkpoint.shards_recorded") == 6
        assert snap.counter("checkpoint.duplicate_records") == 0

    def test_resume_hit_rate(self, fault_log, fault_free, tmp_path):
        first = MetricsRegistry()
        store = self._checkpoint(tmp_path, first)
        engine = PipelineEngine(workers=1, shard_size=SHARD_SIZE, metrics=first)
        tasks = _shard_tasks(fault_log)
        engine.map(
            _log_leakage_task,
            tasks,
            checkpoint=store,
            encode=leakage.encode_leakage_partial,
            decode=leakage.decode_leakage_partial,
        )
        assert first.snapshot().gauge("pipeline.checkpoint_hit_rate") == 0.0

        second = MetricsRegistry()
        resumed_store = self._checkpoint(tmp_path, second)
        resumed_engine = PipelineEngine(
            workers=1, shard_size=SHARD_SIZE, metrics=second
        )
        partials = resumed_engine.map(
            _log_leakage_task,
            tasks,
            checkpoint=resumed_store,
            encode=leakage.encode_leakage_partial,
            decode=leakage.decode_leakage_partial,
        )
        assert leakage.reduce_name_partials(list(partials)) == fault_free
        snap = second.snapshot()
        assert snap.counter("pipeline.shards_resumed") == 6
        assert snap.gauge("pipeline.checkpoint_hit_rate") == 1.0
        assert snap.counter("pipeline.shards_completed") == 0
        assert snap.counter("checkpoint.shards_recorded") == 0
