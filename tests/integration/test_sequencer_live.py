"""Live batched write pipeline: submitters race readers while merges run.

The acceptance bar for the MMD sequencer under real concurrency:
several logs mounted on one :class:`~repro.ct.server.LogServer` with
background merge workers, submitter threads (including cross-thread
duplicate certificates) racing reader threads over genuine HTTP — and
afterwards, nothing lost, nothing duplicated, every SCT's promise
provable against a post-merge STH, and the final tree bit-identical to
a serial replay of the observed entry order.

The seeded-storm variant runs under both CI executor matrix legs
(``REPRO_EXECUTOR=process|thread``), same as the per-entry smoke.
"""

import base64
import os
import threading
from datetime import timedelta

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.merkle import leaf_hash, verify_inclusion_proof
from repro.ct.sct import precert_signing_input
from repro.ct.server import LogClient, LogClientError, LogServer
from repro.obs import EventLog, MetricsRegistry
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import LoadStormConfig, plan_storm, run_storm
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)

EXECUTORS = (
    [os.environ["REPRO_EXECUTOR"]]
    if os.environ.get("REPRO_EXECUTOR")
    else ["process", "thread"]
)


def _build_log(name, entries=6):
    log = CTLog(name=name, operator="Live", key=log_key(name, 256))
    ca = CertificateAuthority(f"Seed CA {name}", key_bits=256)
    for i in range(entries):
        ca.issue(
            IssuanceRequest((f"seed{i}.{name.lower().replace(' ', '-')}.example",)),
            [log],
            NOW + timedelta(seconds=i),
        )
    return log


def _precerts(count, tag):
    ca = CertificateAuthority(f"Live Seq CA {tag}", key_bits=256)
    scratch = CTLog(
        name=f"seq-live-scratch-{tag}",
        operator="Live",
        key=log_key(f"seq-live-scratch-{tag}", 256),
    )
    pairs = [
        ca.issue(IssuanceRequest((f"s{i}.{tag}.example",)), [scratch], NOW)
        for i in range(count)
    ]
    return [pair.precertificate for pair in pairs], ca.issuer_key_hash


def test_submitters_race_readers_across_sharded_logs():
    logs = [_build_log(f"Shard Log {i}") for i in range(3)]
    seeded_sizes = {log.name: log.size for log in logs}
    precerts_by_log = {}
    ikh_by_log = {}
    for log in logs:
        precerts, ikh = _precerts(10, tag=log.name.replace(" ", "-").lower())
        precerts_by_log[log.name] = precerts
        ikh_by_log[log.name] = ikh

    metrics = MetricsRegistry()
    # Readers emit thousands of log_server_request events; a big tail
    # keeps the interleaved sequencer_merge events inspectable.
    events = EventLog(tail_size=100_000)
    telemetry_lock = threading.Lock()
    server = LogServer(
        logs,
        merge_interval=0.01,
        max_batch=4,
        metrics=metrics,
        events=events,
        telemetry_lock=telemetry_lock,
    )
    errors = []
    scts_by_log = {log.name: [] for log in logs}
    reader_rounds = []
    stop_readers = threading.Event()

    with server:
        urls = {log.name: server.log_url(log.name) for log in logs}

        def submit(log_name, start):
            # Two submitter threads per log walk the same precert list
            # from both ends, so the middle certs are submitted twice
            # across threads — the cross-thread duplicate race.
            try:
                client = LogClient(urls[log_name], timeout=30)
                precerts = precerts_by_log[log_name]
                order = precerts if start == 0 else list(reversed(precerts))
                for precert in order:
                    sct = client.add_pre_chain(precert, ikh_by_log[log_name])
                    scts_by_log[log_name].append((precert, sct))
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(f"submitter {log_name}: {exc!r}")

        def read(log_name):
            try:
                client = LogClient(urls[log_name], timeout=30)
                rounds = 0
                while not stop_readers.is_set():
                    sth = client.get_sth()
                    size = int(sth["tree_size"])
                    assert size >= seeded_sizes[log_name]
                    if size:
                        entries = client.get_entries(0, min(size - 1, 3))
                        assert entries[0].index == 0
                    rounds += 1
                reader_rounds.append(rounds)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(f"reader {log_name}: {exc!r}")

        submitters = [
            threading.Thread(target=submit, args=(log.name, start))
            for log in logs
            for start in (0, 1)
        ]
        readers = [
            threading.Thread(target=read, args=(log.name,)) for log in logs
        ]
        for t in readers + submitters:
            t.start()
        for t in submitters:
            t.join(timeout=120)
        stop_readers.set()
        for t in readers:
            t.join(timeout=30)
        assert not errors

        # Everything pending is merged before the assertions below.
        server.drain_writes()

        # Every SCT's leaf verifies inclusion against a *served*
        # post-merge STH — the MMD promise, checked over the wire.
        for log in logs:
            client = LogClient(urls[log.name], timeout=30)
            sth = client.get_sth()
            size = int(sth["tree_size"])
            root = base64.b64decode(str(sth["sha256_root_hash"]))
            for precert, sct in scts_by_log[log.name]:
                assert sct.log_id == log.log_id
                leaf = precert_signing_input(precert, ikh_by_log[log.name])
                index, path = client.get_proof_by_hash(leaf_hash(leaf), size)
                assert verify_inclusion_proof(leaf, index, size, path, root)

    for log in logs:
        # No lost and no duplicated entries: every submitted precert
        # landed exactly once despite two racing submitters per log.
        assert log.size == seeded_sizes[log.name] + 10
        assert len({e.leaf_input for e in log.entries}) == log.size

        # The final tree equals a serial replay of the observed order.
        replay = CTLog(
            name=log.name, operator="Live", key=log_key(log.name, 256)
        )
        for entry in log.entries:
            replay.tree.append(entry.leaf_input)
        assert replay.tree.root() == log.tree.root()
        for size in range(log.size + 1):
            assert replay.tree.root(size) == log.tree.root(size)

    # Both submitters per log got an SCT for all ten precerts (the
    # duplicate submissions were answered from the pending/merged
    # caches, with identical bytes per cert).
    for log in logs:
        assert len(scts_by_log[log.name]) == 20
        by_leaf = {}
        for precert, sct in scts_by_log[log.name]:
            by_leaf.setdefault(precert.serial, set()).add(sct.signature)
        assert all(len(sigs) == 1 for sigs in by_leaf.values())

    assert reader_rounds and all(rounds > 0 for rounds in reader_rounds)
    stats = server.sequencer_stats()
    assert set(stats) == {
        "shard-log-0", "shard-log-1", "shard-log-2"
    }
    for per_log in stats.values():
        assert per_log["entries_merged"] == 10
        assert per_log["pending"] == 0
        assert per_log["dedup_hits"] >= 1  # the cross-thread duplicates
    merge_events = [
        e for e in events.tail(100_000) if e["kind"] == "sequencer_merge"
    ]
    assert sum(int(e["batch"]) for e in merge_events) == 30


@pytest.mark.parametrize("executor", EXECUTORS)
def test_batched_storm_under_both_executors(executor):
    log = _build_log("Batched Storm Log", entries=8)
    config = LoadStormConfig(
        seed=13,
        browsers=2,
        monitors=1,
        submitters=2,
        audits_per_browser=3,
        pages_per_monitor=2,
        page_size=4,
        submissions_per_submitter=4,
        timeout_s=60.0,
    )
    plans = plan_storm(config, log)
    with LogServer(
        log, clock=lambda: NOW, merge_interval=0.02, max_batch=8
    ) as server:
        report = run_storm(
            plans,
            server.log_url(log.name),
            executor=executor,
            workers=5,
            timeout_s=60.0,
        )
        server.drain_writes()

    assert report.executor == executor
    assert report.transport_errors == 0
    assert report.verification_failures == 0
    assert report.submissions_ok == config.planned_submissions
    # Every submitter saw all of its leaves merged and proven.
    assert report.inclusions_verified == config.submitters
    assert report.merge_lag_max_s > 0.0
    assert log.size == 8 + config.planned_submissions
    assert len({e.leaf_input for e in log.entries}) == log.size


def test_pending_depth_visible_on_index_page():
    log = _build_log("Depth Log", entries=3)
    (precert,), ikh = _precerts(1, "depth")
    # A huge interval means no background merge fires during the test:
    # the submission stays pending until drain_writes.
    with LogServer(log, merge_interval=3600.0) as server:
        client = LogClient(server.log_url(log.name), timeout=30)
        client.add_pre_chain(precert, ikh)
        assert log.size == 3  # promise issued, not yet merged
        import json as _json
        import urllib.request

        with urllib.request.urlopen(server.url, timeout=10) as response:
            payload = _json.loads(response.read().decode())
        (mount,) = payload["logs"]
        assert mount["pending"] == 1
        assert mount["tree_size"] == 3
        assert server.drain_writes() == 1
    assert log.size == 4


def test_disqualified_sequenced_log_rejects_over_http():
    log = _build_log("DQ Log", entries=2)
    (precert,), ikh = _precerts(1, "dq")
    with LogServer(log, merge_interval=0.05) as server:
        log.disqualify()
        client = LogClient(server.log_url(log.name), timeout=30)
        with pytest.raises(LogClientError) as excinfo:
            client.add_pre_chain(precert, ikh)
        assert excinfo.value.status == 410
    assert log.size == 2
