"""Live telemetry: scrape a *running* monitoring loop over HTTP.

The acceptance bar for the live-export layer: while a feed loop is
mid-run, ``GET /metrics`` serves valid Prometheus exposition text,
``GET /health`` answers with per-log SLO verdicts, ``GET /events/tail``
streams the most recent events — and once the loop finishes, replaying
the event log reproduces the final snapshot's counters exactly.
"""

import json
import os
import threading
import urllib.request
from datetime import timedelta

import pytest

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    MetricsRegistry,
    TelemetryServer,
    parse_exposition,
    replay_counters,
)
from repro.pipeline import PipelineEngine
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)

# CI's telemetry-smoke job pins one executor per matrix leg via
# REPRO_EXECUTOR; locally both run.
EXECUTORS = (
    [os.environ["REPRO_EXECUTOR"]]
    if os.environ.get("REPRO_EXECUTOR")
    else ["process", "thread"]
)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


def test_scrape_feed_loop_while_running():
    logs = [
        CTLog(name="Live A", operator="T", key=log_key("Live A", 256)),
        CTLog(name="Live B", operator="T", key=log_key("Live B", 256)),
    ]
    ca = CertificateAuthority("Live CA", key_bits=256)
    metrics = MetricsRegistry()
    events = EventLog()
    feed = CertFeed(
        logs, metrics=metrics, events=events, flush_interval_s=0.0
    )
    feed.subscribe("sink", lambda event: None)

    # The registry is not thread-safe; the loop and the scrape handlers
    # share one lock, exactly as a real loop owner would wire it.
    lock = threading.Lock()
    mid_loop = threading.Event()
    scraped = threading.Event()
    rounds = 12

    def loop():
        for round_no in range(rounds):
            when = NOW + timedelta(minutes=round_no)
            with lock:
                for log in logs:
                    ca.issue(
                        IssuanceRequest((f"r{round_no}.live.example",)),
                        [log],
                        when,
                    )
                feed.run_once(when)
            if round_no == rounds // 2:
                mid_loop.set()
                scraped.wait(timeout=30)
        with lock:
            feed.flush_telemetry()

    def locked_snapshot():
        with lock:
            return metrics.snapshot()

    def locked_health():
        with lock:
            return feed.health_report()

    worker = threading.Thread(target=loop)
    with TelemetryServer(
        locked_snapshot, health_source=locked_health, events=events
    ) as server:
        worker.start()
        try:
            assert mid_loop.wait(timeout=30), "loop never reached midpoint"
            # --- scrape /metrics mid-run: valid, non-trivial exposition
            status, text = _get(server.url + "/metrics")
            assert status == 200
            samples = parse_exposition(text)  # raises on malformed lines
            live_entries = sum(
                value for key, value in samples.items()
                if key.startswith("repro_feed_entries_total")
            )
            assert 0 < live_entries < 2 * rounds  # genuinely mid-run
            # --- /health mid-run: all logs answering -> healthy
            status, body = _get(server.url + "/health")
            assert status == 200
            health = json.loads(body)
            assert health["overall"] == "healthy"
            assert set(health["logs"]) == {"Live A", "Live B"}
            # --- /events/tail mid-run: NDJSON of the latest events
            status, body = _get(server.url + "/events/tail?n=4")
            assert status == 200
            tail = [json.loads(line) for line in body.splitlines()]
            assert len(tail) == 4
            assert all(event["v"] == EVENT_SCHEMA_VERSION for event in tail)
        finally:
            scraped.set()
            worker.join(timeout=60)
        assert not worker.is_alive()

        # --- after the loop: final scrape equals the final snapshot
        status, text = _get(server.url + "/metrics")
        final = parse_exposition(text)
        assert final[
            'repro_feed_entries_total{log="Live A"}'
        ] == rounds

    # --- replay equality: the event stream IS the counter history
    replayed = replay_counters(events.tail(100_000))
    counters = metrics.snapshot().counters
    for family in ("feed.entries", "feed.poll_errors", "feed.poll_retries"):
        expected = {
            key: value for key, value in counters.items()
            if key.startswith(family)
        }
        got = {
            key: value for key, value in replayed.items()
            if key.startswith(family)
        }
        assert got == expected, family
    # ...and the flushed deltas sum to the same counters.
    flushed = {}
    for event in events.tail(100_000):
        if event["kind"] != "metrics_flush":
            continue
        for key, moved in event["counters"].items():
            flushed[key] = flushed.get(key, 0) + moved
    assert flushed == counters


def _square(n):
    return n * n


@pytest.mark.parametrize("executor", EXECUTORS)
def test_scrape_engine_run(executor):
    """The engine's registry is scrapeable after a real parallel run."""
    metrics = MetricsRegistry()
    events = EventLog()
    engine = PipelineEngine(
        workers=2,
        shard_size=64,
        executor=executor,
        metrics=metrics,
        events=events,
    )
    squares = engine.map(_square, list(range(1_000)))
    assert squares == [n * n for n in range(1_000)]
    with TelemetryServer(metrics.snapshot, events=events) as server:
        status, text = _get(server.url + "/metrics")
        assert status == 200
        samples = parse_exposition(text)
        planned = samples["repro_pipeline_shards_planned_total"]
        assert planned == samples["repro_pipeline_shards_completed_total"]
        assert planned > 1
    replayed = replay_counters(events.tail(10_000))
    assert replayed["pipeline.shards_planned"] == planned
    assert replayed["pipeline.shards_completed"] == planned
