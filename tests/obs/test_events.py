"""Tests for the structured event log, replay, and delta flushing."""

from datetime import timedelta

import pytest

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.ct.monitor import StreamingMonitor
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventLog,
    MetricsRegistry,
    MetricsSnapshot,
    SnapshotDeltaFlusher,
    counter_delta,
    new_run_id,
    read_events,
    replay_counters,
)
from repro.obs.events import ENVELOPE_FIELDS
from repro.pipeline import PipelineEngine
from repro.resilience import FlakyLog, RetryPolicy
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


class TestEventLog:
    def test_envelope_fields_and_gapless_seq(self):
        events = EventLog(run_id="abc", clock=lambda: 12.3456789)
        first = events.emit("run_start", artifact="fig1a")
        second = events.emit("run_finish", ok=True)
        assert first["v"] == EVENT_SCHEMA_VERSION == 2
        assert first["run"] == "abc"
        assert first["ts"] == 12.345679  # rounded to microseconds
        assert [first["seq"], second["seq"]] == [0, 1]
        assert events.emitted == 2
        assert list(first)[: len(ENVELOPE_FIELDS)] == list(ENVELOPE_FIELDS)

    def test_emit_rejects_envelope_shadowing(self):
        events = EventLog()
        with pytest.raises(ValueError, match="shadow"):
            events.emit("run_start", seq=99)

    def test_jsonl_file_is_flushed_live(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="live") as events:
            events.emit("feed_poll", log="pilot", ok=True, entries=2)
            # Readable *before* close: each line is flushed as written.
            live = read_events(path)
            assert len(live) == 1
            assert live[0]["kind"] == "feed_poll"
            events.emit("feed_poll", log="pilot", ok=False, error="boom")
        replayed = read_events(path)
        assert [event["seq"] for event in replayed] == [0, 1]
        assert replayed == events.tail(10)

    def test_tail_ring_buffer(self):
        events = EventLog(tail_size=3)
        for index in range(5):
            events.emit("feed_poll", log="pilot", ok=True, entries=index)
        tail = events.tail(10)
        assert [event["entries"] for event in tail] == [2, 3, 4]
        assert [event["entries"] for event in events.tail(2)] == [3, 4]
        assert events.tail(0) == []
        with pytest.raises(ValueError):
            events.tail(-1)
        with pytest.raises(ValueError):
            EventLog(tail_size=0)

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12


def test_event_kinds_are_stable():
    # Removing or renaming a kind is a schema break; additions append.
    assert set(EVENT_KINDS) >= {
        "run_start", "run_finish", "map_start", "map_finish",
        "shard_finish", "shard_failed", "checkpoint_resume", "degraded",
        "feed_poll", "monitor_fetch", "auditor_poll", "audit_finding",
        "metrics_flush",
    }


def _counters(snapshot, prefix):
    return {
        key: value
        for key, value in snapshot.counters.items()
        if key.startswith(prefix)
    }


class TestReplayEquality:
    """Events mirror metric increments: replay == final snapshot."""

    def _world(self):
        log_a = CTLog(name="Replay A", operator="T", key=log_key("Replay A", 256))
        log_b = CTLog(name="Replay B", operator="T", key=log_key("Replay B", 256))
        rng = SeededRng(3, "replay")
        flaky = FlakyLog(log_b, rng, failure_rate=0.6, max_consecutive=1)
        ca = CertificateAuthority("Replay CA", key_bits=256)
        return log_a, flaky, ca, rng

    def test_feed_replay_matches_snapshot(self):
        log_a, flaky, ca, rng = self._world()
        metrics = MetricsRegistry()
        events = EventLog()
        feed = CertFeed(
            [log_a, flaky],
            retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, rng=rng.fork("retry")
            ),
            metrics=metrics,
            events=events,
        )
        for round_no in range(8):
            when = NOW + timedelta(minutes=round_no)
            ca.issue(IssuanceRequest((f"r{round_no}.example",)), [log_a], when)
            ca.issue(IssuanceRequest((f"f{round_no}.example",)), [flaky], when)
            feed.poll(when)
        replayed = replay_counters(events.tail(10_000))
        snapshot = metrics.snapshot()
        assert _counters(snapshot, "feed.entries") == {
            key: value
            for key, value in replayed.items()
            if key.startswith("feed.entries")
        }
        for family in ("feed.poll_errors", "feed.poll_retries"):
            assert _counters(snapshot, family) == {
                key: value
                for key, value in replayed.items()
                if key.startswith(family)
            }, family
        # The run actually exercised both outcomes.
        assert any(key.startswith("feed.entries") for key in replayed)

    def test_monitor_replay_matches_snapshot(self):
        log_a, flaky, ca, rng = self._world()
        metrics = MetricsRegistry()
        events = EventLog()
        monitor = StreamingMonitor(
            "certstream",
            rng,
            retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, rng=rng.fork("mon-retry")
            ),
            metrics=metrics,
            events=events,
        )
        for round_no in range(8):
            when = NOW + timedelta(minutes=round_no)
            ca.issue(IssuanceRequest((f"m{round_no}.example",)), [flaky], when)
            monitor.observe(flaky)
            ca.issue(IssuanceRequest((f"n{round_no}.example",)), [log_a], when)
            monitor.observe(log_a)
        replayed = replay_counters(events.tail(10_000))
        snapshot = metrics.snapshot()
        monitor_families = {
            key: value
            for key, value in replayed.items()
            if key.startswith("monitor.")
        }
        assert monitor_families == _counters(snapshot, "monitor.")

    def test_pipeline_replay_matches_snapshot(self):
        metrics = MetricsRegistry()
        events = EventLog()
        engine = PipelineEngine(
            workers=1, shard_size=4, metrics=metrics, events=events
        )
        results = engine.map(_double, list(range(17)))
        assert results == [2 * n for n in range(17)]
        replayed = replay_counters(events.tail(10_000))
        snapshot = metrics.snapshot()
        for family in (
            "pipeline.shards_planned",
            "pipeline.shards_completed",
            "pipeline.shard_attempts",
        ):
            assert replayed.get(family) == snapshot.counters.get(family), family
        kinds = [event["kind"] for event in events.tail(100)]
        assert kinds[0] == "map_start"
        assert kinds[-1] == "map_finish"


def _double(n):
    return 2 * n


class TestDeltaFlushing:
    def test_counter_delta(self):
        old = MetricsSnapshot(counters={"a": 1, "b": 2})
        new = MetricsSnapshot(counters={"a": 4, "b": 2, "c": 7})
        assert counter_delta(old, new) == {"a": 3, "c": 7}

    def test_interval_gating_with_fake_clock(self):
        metrics = MetricsRegistry()
        events = EventLog()
        tick = {"now": 0.0}
        flusher = SnapshotDeltaFlusher(
            metrics, events, interval_s=5.0, clock=lambda: tick["now"]
        )
        metrics.inc("feed.entries", 2, log="pilot")
        tick["now"] = 1.0
        assert flusher.maybe_flush() is False
        tick["now"] = 6.0
        assert flusher.maybe_flush() is True
        assert flusher.maybe_flush() is False  # interval restarts
        flushes = [
            event for event in events.tail(10)
            if event["kind"] == "metrics_flush"
        ]
        assert len(flushes) == 1
        assert flushes[0]["counters"] == {"feed.entries{log=pilot}": 2}

    def test_flushed_deltas_sum_to_final_counters(self):
        metrics = MetricsRegistry()
        events = EventLog()
        flusher = SnapshotDeltaFlusher(metrics, events, interval_s=0.0)
        for round_no in range(5):
            metrics.inc("feed.entries", round_no + 1, log="pilot")
            if round_no % 2 == 0:
                metrics.inc("feed.poll_errors", 1, log="other")
            flusher.maybe_flush()
        totals = {}
        for event in events.tail(100):
            for key, moved in event["counters"].items():
                totals[key] = totals.get(key, 0) + moved
        assert totals == metrics.snapshot().counters

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            SnapshotDeltaFlusher(MetricsRegistry(), EventLog(), interval_s=-1)

    def test_feed_wires_flusher_and_final_flush(self):
        log_a = CTLog(name="Flush A", operator="T", key=log_key("Flush A", 256))
        ca = CertificateAuthority("Flush CA", key_bits=256)
        metrics = MetricsRegistry()
        events = EventLog()
        feed = CertFeed(
            [log_a], metrics=metrics, events=events, flush_interval_s=0.0
        )
        ca.issue(IssuanceRequest(("flush.example",)), [log_a], NOW)
        feed.poll(NOW)
        assert feed.flush_telemetry() is True
        totals = {}
        for event in events.tail(100):
            if event["kind"] != "metrics_flush":
                continue
            for key, moved in event["counters"].items():
                totals[key] = totals.get(key, 0) + moved
        assert totals == metrics.snapshot().counters

    def test_feed_flush_interval_requires_events_and_metrics(self):
        log_a = CTLog(name="Flush B", operator="T", key=log_key("Flush B", 256))
        with pytest.raises(ValueError, match="flush_interval_s"):
            CertFeed([log_a], flush_interval_s=1.0)
        feed = CertFeed([log_a])
        assert feed.flush_telemetry() is False
