"""Tests for the Prometheus exposition renderer and telemetry server."""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    EXPOSITION_CONTENT_TYPE,
    EventLog,
    MetricsRegistry,
    TelemetryServer,
    escape_label_value,
    evaluate_stats,
    format_number,
    parse_exposition,
    prometheus_name,
    render_prometheus,
    split_metric_key,
)


def _fixed_registry():
    registry = MetricsRegistry()
    registry.inc("feed.entries", 3, log="Pilot")
    registry.inc("feed.entries", 2, log="Rocketeer")
    registry.inc("feed.poll_errors", 1, log="Pilot")
    registry.set_gauge("auditor.tree_size", 42, log="Pilot")
    registry.observe("fetch.seconds", 0.5, bounds=(1.0, 2.0))
    registry.observe("fetch.seconds", 1.5, bounds=(1.0, 2.0))
    registry.observe("fetch.seconds", 5.0, bounds=(1.0, 2.0))
    return registry


GOLDEN = """\
# TYPE repro_feed_entries_total counter
repro_feed_entries_total{log="Pilot"} 3
repro_feed_entries_total{log="Rocketeer"} 2
# TYPE repro_feed_poll_errors_total counter
repro_feed_poll_errors_total{log="Pilot"} 1
# TYPE repro_auditor_tree_size gauge
repro_auditor_tree_size{log="Pilot"} 42
# TYPE repro_fetch_seconds histogram
repro_fetch_seconds_bucket{le="1"} 1
repro_fetch_seconds_bucket{le="2"} 2
repro_fetch_seconds_bucket{le="+Inf"} 3
repro_fetch_seconds_sum 7
repro_fetch_seconds_count 3
"""


def test_golden_exposition_text():
    assert render_prometheus(_fixed_registry().snapshot()) == GOLDEN


def test_render_is_deterministic():
    first = render_prometheus(_fixed_registry().snapshot())
    second = render_prometheus(_fixed_registry().snapshot())
    assert first == second


def test_empty_snapshot_renders_empty():
    assert render_prometheus(MetricsRegistry().snapshot()) == ""


def test_parse_exposition_inverts_render():
    samples = parse_exposition(GOLDEN)
    assert samples['repro_feed_entries_total{log="Pilot"}'] == 3
    assert samples['repro_fetch_seconds_bucket{le="+Inf"}'] == 3
    assert samples["repro_fetch_seconds_sum"] == 7
    # Cumulative buckets are monotone up to the +Inf bucket == _count.
    assert samples['repro_fetch_seconds_bucket{le="1"}'] <= samples[
        'repro_fetch_seconds_bucket{le="2"}'
    ]


def test_parse_exposition_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_exposition("this is { not a sample\n")
    with pytest.raises(ValueError):
        parse_exposition("# HELP something helpful\n")


def test_prometheus_name_sanitizes():
    assert prometheus_name("feed.poll_errors") == "repro_feed_poll_errors"
    assert prometheus_name("weird-name.x", prefix="") == "weird_name_x"
    assert prometheus_name("9lives", prefix="")[0] == "_"


def test_format_number():
    assert format_number(3) == "3"
    assert format_number(7.0) == "7"
    assert format_number(0.25) == "0.25"


def test_label_values_escaped():
    registry = MetricsRegistry()
    registry.inc("weird.metric", 1, log='na"me\\with\nnewline')
    text = render_prometheus(registry.snapshot())
    assert 'log="na\\"me\\\\with\\nnewline"' in text
    assert parse_exposition(text)  # still well-formed


def test_escape_label_value_order():
    # Backslashes escape first, so escaped quotes aren't double-escaped.
    assert escape_label_value('a\\"b') == 'a\\\\\\"b'
    assert escape_label_value("line\nbreak") == "line\\nbreak"


def test_split_metric_key_round_trip():
    assert split_metric_key("plain") == ("plain", {})
    assert split_metric_key("m{log=Pilot,monitor=m1}") == (
        "m",
        {"log": "Pilot", "monitor": "m1"},
    )
    # A comma inside a label value re-joins onto the preceding pair.
    assert split_metric_key("m{log=a,b}") == ("m", {"log": "a,b"})


def _random_snapshot(rnd):
    registry = MetricsRegistry()
    for _ in range(rnd.randint(0, 20)):
        name = rnd.choice(["a.counter", "b.feed", "c.pipeline"])
        labels = {}
        if rnd.random() < 0.7:
            labels["log"] = rnd.choice(
                ["pilot", "rocketeer", 'we"ird', "back\\slash"]
            )
        if rnd.random() < 0.3:
            labels["monitor"] = rnd.choice(["m1", "m2"])
        registry.inc(name, rnd.randint(1, 5), **labels)
    return registry.snapshot()


def test_property_render_of_merge_sums_counter_lines():
    """render(merge(a, b)) counter samples == summed samples of a and b."""
    rnd = random.Random(20180418)
    for _ in range(25):
        a, b = _random_snapshot(rnd), _random_snapshot(rnd)
        merged = parse_exposition(render_prometheus(a.merge(b)))
        left = parse_exposition(render_prometheus(a))
        right = parse_exposition(render_prometheus(b))
        summed = {
            key: left.get(key, 0) + right.get(key, 0)
            for key in set(left) | set(right)
        }
        assert merged == summed


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestTelemetryServer:
    def test_metrics_endpoint_serves_exposition(self):
        registry = _fixed_registry()
        with TelemetryServer(registry.snapshot) as server:
            status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == EXPOSITION_CONTENT_TYPE
        assert body == GOLDEN

    def test_health_endpoint_and_failing_is_503(self):
        healthy = evaluate_stats({"pilot": {"successes": 3, "entries": 3}})
        failing = evaluate_stats({"pilot": {"consecutive_failures": 5}})
        report = {"value": healthy}
        with TelemetryServer(
            MetricsRegistry().snapshot,
            health_source=lambda: report["value"],
        ) as server:
            status, _, body = _get(server.url + "/health")
            assert status == 200
            payload = json.loads(body)
            assert payload["overall"] == "healthy"
            assert payload["logs"]["pilot"]["verdict"] == "healthy"
            report["value"] = failing
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/health")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["overall"] == "failing"

    def test_events_tail_endpoint_serves_ndjson(self):
        events = EventLog(run_id="testrun")
        for index in range(5):
            events.emit("feed_poll", log="pilot", ok=True, entries=index)
        with TelemetryServer(
            MetricsRegistry().snapshot, events=events
        ) as server:
            status, headers, body = _get(server.url + "/events/tail?n=2")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines()]
        assert [line["entries"] for line in lines] == [3, 4]
        assert all(line["run"] == "testrun" for line in lines)

    def test_missing_sources_answer_404(self):
        with TelemetryServer(MetricsRegistry().snapshot) as server:
            for route in ("/health", "/events/tail", "/analytics", "/nonsense"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server.url + route)
                assert excinfo.value.code == 404

    def test_analytics_endpoint_serves_version1_json(self):
        snapshot = {
            "version": 1,
            "records_folded": 3,
            "batches_folded": 1,
            "sections": {"growth": {"CA": [["2018-04-01", 3]]}},
        }
        with TelemetryServer(
            MetricsRegistry().snapshot, analytics_source=lambda: snapshot
        ) as server:
            status, headers, body = _get(server.url + "/analytics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body.endswith("\n")
        assert json.loads(body) == snapshot
        # Deterministic rendering: keys arrive sorted.
        assert body == json.dumps(snapshot, sort_keys=True) + "\n"

    def test_analytics_source_may_return_a_to_dict_object(self):
        class Live:
            def to_dict(self):
                return {"version": 1, "sections": {}}

        with TelemetryServer(
            MetricsRegistry().snapshot, analytics_source=Live
        ) as server:
            status, _, body = _get(server.url + "/analytics")
        assert status == 200
        assert json.loads(body) == {"version": 1, "sections": {}}

    def test_analytics_reflects_source_updates_between_scrapes(self):
        state = {"version": 1, "records_folded": 0}
        with TelemetryServer(
            MetricsRegistry().snapshot, analytics_source=lambda: dict(state)
        ) as server:
            _, _, before = _get(server.url + "/analytics")
            state["records_folded"] = 42
            _, _, after = _get(server.url + "/analytics")
        assert json.loads(before)["records_folded"] == 0
        assert json.loads(after)["records_folded"] == 42

    def test_bad_tail_parameter_answers_400(self):
        with TelemetryServer(
            MetricsRegistry().snapshot, events=EventLog()
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/events/tail?n=potato")
            assert excinfo.value.code == 400

    def test_ephemeral_port_and_restart_guard(self):
        server = TelemetryServer(MetricsRegistry().snapshot)
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")
        with server:
            with pytest.raises(RuntimeError):
                server.start()
        server.stop()  # idempotent after context exit
