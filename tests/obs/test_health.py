"""Tests for the per-log SLO verdict engine."""

import json

import pytest

from repro.obs import (
    DEFAULT_POLICY,
    HealthReport,
    SloPolicy,
    evaluate_log,
    evaluate_stats,
)
from repro.obs.health import VERDICTS


class TestVerdictRules:
    def test_clean_counters_are_healthy(self):
        health = evaluate_log("pilot", {"successes": 10, "entries": 42})
        assert health.verdict == "healthy"
        assert health.reason == "ok"

    def test_no_traffic_is_healthy(self):
        assert evaluate_log("idle", {}).verdict == "healthy"

    def test_retries_mean_degraded(self):
        health = evaluate_log("flaky", {"successes": 10, "retries": 3})
        assert health.verdict == "degraded"
        assert "3 retries" in health.reason

    def test_error_ratio_over_budget_is_degraded(self):
        health = evaluate_log("lossy", {"successes": 8, "errors": 2})
        assert health.verdict == "degraded"
        assert "error ratio" in health.reason

    def test_error_ratio_within_budget_is_healthy(self):
        health = evaluate_log("ok", {"successes": 99, "errors": 1})
        assert health.verdict == "healthy"

    def test_only_errors_no_successes_counts_ratio_one(self):
        health = evaluate_log("dead", {"errors": 2})
        assert health.verdict == "degraded"

    def test_consecutive_failures_mean_failing(self):
        health = evaluate_log(
            "down", {"errors": 3, "consecutive_failures": 3}
        )
        assert health.verdict == "failing"
        assert "consecutive" in health.reason

    def test_failing_beats_degraded(self):
        # A log can match every rule; staleness is the worst signal.
        health = evaluate_log(
            "worst",
            {"successes": 1, "errors": 9, "retries": 5,
             "consecutive_failures": 9},
        )
        assert health.verdict == "failing"

    def test_policy_thresholds_respected(self):
        policy = SloPolicy(
            failing_after=10, max_error_ratio=0.5, degraded_retries=100
        )
        health = evaluate_log(
            "tolerant",
            {"successes": 6, "errors": 4, "retries": 50,
             "consecutive_failures": 4},
            policy,
        )
        assert health.verdict == "healthy"


class TestPolicyValidation:
    def test_defaults(self):
        assert DEFAULT_POLICY.failing_after == 3
        assert DEFAULT_POLICY.max_error_ratio == pytest.approx(0.1)
        assert DEFAULT_POLICY.degraded_retries == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failing_after": 0},
            {"max_error_ratio": -0.1},
            {"max_error_ratio": 1.5},
            {"degraded_retries": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloPolicy(**kwargs)


class TestHealthReport:
    def _report(self):
        return evaluate_stats(
            {
                "pilot": {"successes": 5, "entries": 9},
                "flaky": {"successes": 5, "retries": 2},
                "down": {"errors": 4, "consecutive_failures": 4},
            }
        )

    def test_overall_is_worst_verdict(self):
        report = self._report()
        assert report.overall == "failing"
        assert report.ok is False
        assert report.verdicts() == {
            "pilot": "healthy", "flaky": "degraded", "down": "failing",
        }

    def test_empty_report_is_healthy(self):
        report = HealthReport(logs=())
        assert report.overall == "healthy"
        assert report.ok is True

    def test_to_dict_is_json_ready_and_sorted(self):
        payload = self._report().to_dict()
        assert payload["version"] == 1
        assert payload["overall"] == "failing"
        assert list(payload["logs"]) == sorted(payload["logs"])
        round_trip = json.loads(json.dumps(payload, sort_keys=True))
        assert round_trip == payload
        assert round_trip["logs"]["down"]["consecutive_failures"] == 4

    def test_render_table(self):
        text = self._report().render()
        lines = text.splitlines()
        assert lines[0] == "Log health — 3 logs, overall failing"
        assert "verdict" in lines[1] and "streak" in lines[1]
        assert any("down" in line and "failing" in line for line in lines)
        assert any("recovered only after 2 retries" in line for line in lines)

    def test_verdict_order_is_severity_order(self):
        assert VERDICTS == ("healthy", "degraded", "failing")


def test_same_counters_same_report():
    stats = {"a": {"successes": 3, "retries": 1}}
    assert evaluate_stats(stats) == evaluate_stats(stats)
