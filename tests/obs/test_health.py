"""Tests for the per-log SLO verdict engine."""

import json

import pytest

from repro.obs import (
    DEFAULT_POLICY,
    HealthReport,
    MetricsRegistry,
    SloPolicy,
    evaluate_log,
    evaluate_stats,
    evaluate_write_path,
)
from repro.obs.health import VERDICTS


class TestVerdictRules:
    def test_clean_counters_are_healthy(self):
        health = evaluate_log("pilot", {"successes": 10, "entries": 42})
        assert health.verdict == "healthy"
        assert health.reason == "ok"

    def test_no_traffic_is_healthy(self):
        assert evaluate_log("idle", {}).verdict == "healthy"

    def test_retries_mean_degraded(self):
        health = evaluate_log("flaky", {"successes": 10, "retries": 3})
        assert health.verdict == "degraded"
        assert "3 retries" in health.reason

    def test_error_ratio_over_budget_is_degraded(self):
        health = evaluate_log("lossy", {"successes": 8, "errors": 2})
        assert health.verdict == "degraded"
        assert "error ratio" in health.reason

    def test_error_ratio_within_budget_is_healthy(self):
        health = evaluate_log("ok", {"successes": 99, "errors": 1})
        assert health.verdict == "healthy"

    def test_only_errors_no_successes_counts_ratio_one(self):
        health = evaluate_log("dead", {"errors": 2})
        assert health.verdict == "degraded"

    def test_consecutive_failures_mean_failing(self):
        health = evaluate_log(
            "down", {"errors": 3, "consecutive_failures": 3}
        )
        assert health.verdict == "failing"
        assert "consecutive" in health.reason

    def test_failing_beats_degraded(self):
        # A log can match every rule; staleness is the worst signal.
        health = evaluate_log(
            "worst",
            {"successes": 1, "errors": 9, "retries": 5,
             "consecutive_failures": 9},
        )
        assert health.verdict == "failing"

    def test_policy_thresholds_respected(self):
        policy = SloPolicy(
            failing_after=10, max_error_ratio=0.5, degraded_retries=100
        )
        health = evaluate_log(
            "tolerant",
            {"successes": 6, "errors": 4, "retries": 50,
             "consecutive_failures": 4},
            policy,
        )
        assert health.verdict == "healthy"


class TestPolicyValidation:
    def test_defaults(self):
        assert DEFAULT_POLICY.failing_after == 3
        assert DEFAULT_POLICY.max_error_ratio == pytest.approx(0.1)
        assert DEFAULT_POLICY.degraded_retries == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failing_after": 0},
            {"max_error_ratio": -0.1},
            {"max_error_ratio": 1.5},
            {"degraded_retries": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloPolicy(**kwargs)


class TestHealthReport:
    def _report(self):
        return evaluate_stats(
            {
                "pilot": {"successes": 5, "entries": 9},
                "flaky": {"successes": 5, "retries": 2},
                "down": {"errors": 4, "consecutive_failures": 4},
            }
        )

    def test_overall_is_worst_verdict(self):
        report = self._report()
        assert report.overall == "failing"
        assert report.ok is False
        assert report.verdicts() == {
            "pilot": "healthy", "flaky": "degraded", "down": "failing",
        }

    def test_empty_report_is_healthy(self):
        report = HealthReport(logs=())
        assert report.overall == "healthy"
        assert report.ok is True

    def test_to_dict_is_json_ready_and_sorted(self):
        payload = self._report().to_dict()
        assert payload["version"] == 1
        assert payload["overall"] == "failing"
        assert list(payload["logs"]) == sorted(payload["logs"])
        round_trip = json.loads(json.dumps(payload, sort_keys=True))
        assert round_trip == payload
        assert round_trip["logs"]["down"]["consecutive_failures"] == 4

    def test_render_table(self):
        text = self._report().render()
        lines = text.splitlines()
        assert lines[0] == "Log health — 3 logs, overall failing"
        assert "verdict" in lines[1] and "streak" in lines[1]
        assert any("down" in line and "failing" in line for line in lines)
        assert any("recovered only after 2 retries" in line for line in lines)

    def test_verdict_order_is_severity_order(self):
        assert VERDICTS == ("healthy", "degraded", "failing")


def test_same_counters_same_report():
    stats = {"a": {"successes": 3, "retries": 1}}
    assert evaluate_stats(stats) == evaluate_stats(stats)


class TestWritePath:
    def _registry(self):
        registry = MetricsRegistry()
        # Two sequenced logs with very different worst merge lags.
        registry.observe("sequencer.merge_lag_seconds", 0.4, log="fast")
        registry.inc("sequencer.merges", log="fast")
        registry.inc("sequencer.entries_merged", 5, log="fast")
        registry.observe("sequencer.merge_lag_seconds", 45.0, log="slow")
        registry.observe("sequencer.merge_lag_seconds", 2.0, log="slow")
        registry.inc("sequencer.merges", 2, log="slow")
        registry.inc("sequencer.entries_merged", 8, log="slow")
        return registry

    def test_merge_lag_thresholds(self):
        registry = self._registry()
        report = evaluate_write_path(registry.snapshot())
        assert report.verdicts() == {"fast": "healthy", "slow": "degraded"}
        assert report.overall == "degraded"
        rows = {row.name: row for row in report.rows}
        assert rows["fast"].max_lag_s == pytest.approx(0.4)
        assert rows["slow"].max_lag_s == pytest.approx(45.0)
        assert rows["slow"].merges == 2
        assert rows["slow"].entries_merged == 8

    def test_merge_lag_failing_threshold(self):
        registry = self._registry()
        registry.observe("sequencer.merge_lag_seconds", 500.0, log="slow")
        report = evaluate_write_path(registry.snapshot())
        assert report.verdicts()["slow"] == "failing"
        assert not report.ok

    def test_overload_ratio_rows(self):
        registry = MetricsRegistry()
        for _ in range(18):
            registry.inc("log_server.responses", endpoint="get-sth", status=200)
        registry.inc("log_server.responses", endpoint="add-pre-chain", status=429)
        registry.inc("log_server.responses", endpoint="add-pre-chain", status=410)
        report = evaluate_write_path(registry.snapshot())
        rows = {row.name: row for row in report.rows}
        assert rows["log_server"].verdict == "degraded"  # 2/20 = 10% > 5%
        assert rows["log_server"].responses == 20
        assert rows["log_server"].overloaded == 2
        # Mostly shed -> failing.
        for _ in range(40):
            registry.inc(
                "log_server.responses", endpoint="add-pre-chain", status=429
            )
        worse = evaluate_write_path(registry.snapshot())
        assert worse.verdicts()["log_server"] == "failing"

    def test_empty_snapshot_yields_no_rows(self):
        report = evaluate_write_path(MetricsRegistry().snapshot())
        assert report.rows == ()
        assert report.overall == "healthy"
        assert report.ok

    def test_write_path_policy_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(degraded_merge_lag_s=0.0)
        with pytest.raises(ValueError):
            SloPolicy(failing_merge_lag_s=1.0, degraded_merge_lag_s=5.0)
        with pytest.raises(ValueError):
            SloPolicy(max_overload_ratio=1.5)
        with pytest.raises(ValueError):
            SloPolicy(max_overload_ratio=0.4, failing_overload_ratio=0.1)

    def test_report_serializes_and_renders(self):
        registry = self._registry()
        report = evaluate_write_path(registry.snapshot())
        payload = report.to_dict()
        assert payload["version"] == 1
        assert payload["overall"] == "degraded"
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload
        text = report.render()
        assert text.splitlines()[0].startswith("Write-path health")
        assert any("slow" in line and "degraded" in line for line in text.splitlines())
