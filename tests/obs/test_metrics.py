"""Unit tests for the metrics registry and its snapshots."""

import pytest

from repro.obs import (
    COUNT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("pipeline.shards", {}) == "pipeline.shards"

    def test_labels_sorted(self):
        key = metric_key("feed.entries", {"log": "pilot", "kind": "x509"})
        assert key == "feed.entries{kind=x509,log=pilot}"

    def test_label_order_irrelevant(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key(
            "m", {"b": 2, "a": 1}
        )

    def test_braces_rejected(self):
        with pytest.raises(ValueError):
            metric_key("bad{name}", {})


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_set_wins(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_bucket_placement(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 land at or below the first edge; 3.0 in (2, 4];
        # 100.0 overflows.
        assert hist.counts == [2, 0, 1, 1]
        assert hist.count == 4
        assert hist.sum == 104.5
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(104.5 / 4)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_instruments_created_on_first_touch(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 0.5)
        assert len(registry) == 3

    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        registry.inc("hits", log="pilot")
        registry.inc("hits", log="pilot")
        registry.inc("hits", log="icarus")
        snap = registry.snapshot()
        assert snap.counter("hits{log=pilot}") == 2
        assert snap.counter("hits{log=icarus}") == 1

    def test_histogram_bounds_conflict(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.5)
        with pytest.raises(ValueError):
            registry.histogram("lat", bounds=COUNT_BOUNDS)

    def test_absorb_merges_worker_snapshot(self):
        worker = MetricsRegistry()
        worker.inc("shards", 3)
        worker.set_gauge("peak", 7)
        worker.observe("lat", 0.01)
        parent = MetricsRegistry()
        parent.inc("shards", 1)
        parent.set_gauge("peak", 2)
        parent.observe("lat", 0.02)
        parent.absorb(worker.snapshot())
        snap = parent.snapshot()
        assert snap.counter("shards") == 4
        assert snap.gauge("peak") == 7  # gauges merge by max
        assert snap.histogram_count("lat") == 2
        assert snap.histograms["lat"]["min"] == 0.01
        assert snap.histograms["lat"]["max"] == 0.02

    def test_absorb_into_empty_registry(self):
        worker = MetricsRegistry()
        worker.observe("lat", 0.25)
        parent = MetricsRegistry()
        parent.absorb(worker.snapshot())
        assert parent.snapshot() == worker.snapshot()


class TestSnapshot:
    def _sample(self):
        registry = MetricsRegistry()
        registry.inc("pipeline.shards_completed", 6)
        registry.inc("pipeline.shard_failures", 1, shard=4)
        registry.set_gauge("pipeline.checkpoint_hit_rate", 0.5)
        registry.observe("retry.attempts", 2, bounds=COUNT_BOUNDS)
        return registry.snapshot()

    def test_json_roundtrip(self):
        snap = self._sample()
        again = MetricsSnapshot.from_json(snap.to_json())
        assert again == snap
        assert again.to_json() == snap.to_json()

    def test_write_roundtrip(self, tmp_path):
        snap = self._sample()
        path = snap.write(tmp_path / "metrics.json")
        assert MetricsSnapshot.from_json(path.read_text()) == snap

    def test_to_dict_versioned_and_sorted(self):
        data = self._sample().to_dict()
        assert data["version"] == 1
        assert list(data["counters"]) == sorted(data["counters"])

    def test_merge_identity(self):
        snap = self._sample()
        assert MetricsSnapshot.empty().merge(snap) == snap
        assert snap.merge(MetricsSnapshot.empty()) == snap

    def test_merge_bounds_mismatch_rejected(self):
        left = MetricsRegistry()
        left.observe("lat", 0.5)
        right = MetricsRegistry()
        right.observe("lat", 2, bounds=COUNT_BOUNDS)
        with pytest.raises(ValueError):
            left.snapshot().merge(right.snapshot())

    def test_counter_total_prefix(self):
        snap = self._sample()
        assert snap.counter_total("pipeline.") == 7
        assert snap.counter_total("nope.") == 0

    def test_labeled_family(self):
        snap = self._sample()
        assert snap.labeled("pipeline.shard_failures") == {"{shard=4}": 1}
        assert snap.labeled("pipeline.shards_completed") == {}

    def test_picklable(self):
        import pickle

        snap = self._sample()
        assert pickle.loads(pickle.dumps(snap)) == snap
