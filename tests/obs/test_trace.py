"""Unit tests for the span tracer."""

import json
import threading

from repro.obs import EventLog, SpanTracer, TraceContext, maybe_span


def test_spans_record_nesting_and_order():
    tracer = SpanTracer()
    with tracer.span("outer", shards=2):
        with tracer.span("inner-a"):
            pass
        with tracer.span("inner-b"):
            pass
    names = [span.name for span in tracer.spans]
    assert names == ["outer", "inner-a", "inner-b"]  # start order
    outer, inner_a, inner_b = tracer.spans
    assert outer.parent is None and outer.depth == 0
    assert inner_a.parent == outer.index and inner_a.depth == 1
    assert inner_b.parent == outer.index and inner_b.depth == 1
    assert outer.attrs == {"shards": 2}
    assert all(span.duration_s is not None for span in tracer.spans)
    assert outer.duration_s >= inner_a.duration_s


def test_spans_carry_trace_context():
    tracer = SpanTracer(seed=7, name="t")
    with tracer.span("outer") as outer:
        assert tracer.current_context() == outer.context
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id  # one trace
            assert inner.parent_span_id == outer.span_id
            assert tracer.current_context() == inner.context
    with tracer.span("other-root") as other:
        assert other.trace_id != outer.trace_id  # new trace
        assert other.parent_span_id is None
    assert tracer.current_context() is None
    assert tracer.spans[0].kind == "internal"


def test_seeded_ids_are_deterministic():
    first = SpanTracer(seed=11, name="same")
    second = SpanTracer(seed=11, name="same")
    other = SpanTracer(seed=11, name="different")
    for t in (first, second, other):
        with t.span("a"):
            with t.span("b"):
                pass
    assert [s.span_id for s in first.spans] == [s.span_id for s in second.spans]
    assert first.spans[0].trace_id == second.spans[0].trace_id
    assert other.spans[0].span_id != first.spans[0].span_id


def test_remote_parent_and_links():
    tracer = SpanTracer(seed=3)
    remote = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    link = TraceContext(trace_id="12" * 16, span_id="34" * 8)
    with tracer.span("server.request", kind="server", parent=remote):
        pass
    with tracer.span("merge", kind="consumer", links=[link]) as merge:
        pass
    server = tracer.spans[0]
    assert server.trace_id == remote.trace_id
    assert server.parent_span_id == remote.span_id
    assert server.parent is None  # no *local* parent
    assert server.kind == "server"
    assert merge.links == (link.to_dict(),)


def test_span_duration_set_even_on_error():
    tracer = SpanTracer()
    try:
        with tracer.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.spans[0].duration_s is not None
    assert tracer.current_context() is None  # stack unwound


def test_span_set_attribute():
    tracer = SpanTracer()
    with tracer.span("work") as span:
        span.set("items", 12)
    assert tracer.spans[0].attrs["items"] == 12


def test_to_json_replays_tree():
    tracer = SpanTracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    data = json.loads(tracer.to_json())
    assert [item["name"] for item in data] == ["a", "b"]
    assert data[1]["parent"] == 0
    assert data[0]["started_at"] <= data[1]["started_at"]


def test_render_indents_by_depth():
    tracer = SpanTracer()
    with tracer.span("outer", n=1):
        with tracer.span("inner"):
            pass
    lines = tracer.render().splitlines()
    assert lines[0].endswith("outer n=1")
    assert "  inner" in lines[1]
    assert "ms" in lines[0]


def test_render_uses_parent_links_not_start_order():
    # Two threads interleave: global start order is root-a, root-b,
    # child-a — start order no longer implies tree order, but the
    # rendered tree must still nest child-a under root-a.
    tracer = SpanTracer()
    started = threading.Event()
    release = threading.Event()

    def slow_root():
        with tracer.span("root-a"):
            started.set()
            release.wait(timeout=60)
            with tracer.span("child-a"):
                pass

    worker = threading.Thread(target=slow_root)
    worker.start()
    assert started.wait(timeout=60)
    with tracer.span("root-b"):
        pass
    release.set()
    worker.join(timeout=60)
    names = [span.name for span in tracer.spans]
    assert names == ["root-a", "root-b", "child-a"]  # interleaved
    lines = tracer.render().splitlines()
    assert lines[0].endswith("root-a")
    assert lines[1].endswith("  child-a")  # nested under its parent
    assert lines[2].endswith("root-b")


def test_concurrent_spans_keep_per_thread_stacks():
    # Regression: one tracer shared by many threads (the LogServer
    # middleware case) must not cross-wire parents between threads.
    tracer = SpanTracer(seed=5)
    barrier = threading.Barrier(8)
    errors = []

    def hammer(worker_id):
        try:
            barrier.wait(timeout=60)
            for i in range(25):
                with tracer.span(f"outer-{worker_id}", worker=worker_id) as outer:
                    with tracer.span(f"inner-{worker_id}-{i}") as inner:
                        assert inner.parent == outer.index
                        assert inner.parent_span_id == outer.span_id
                        assert inner.trace_id == outer.trace_id
                assert tracer.current_context() is None
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(n,)) for n in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    assert len(tracer.spans) == 8 * 25 * 2
    assert len({span.span_id for span in tracer.spans}) == len(tracer.spans)
    assert all(span.duration_s is not None for span in tracer.spans)
    for span in tracer.spans:
        if span.parent is not None:
            parent = tracer.spans[span.parent]
            # Parent/child always belong to the same worker's trace.
            assert parent.attrs["worker"] == int(span.name.split("-")[1])


def test_closed_spans_serialize_as_span_events():
    events = EventLog()
    tracer = SpanTracer(seed=9, events=events)
    with tracer.span("outer", n=1):
        with tracer.span("inner"):
            pass
    kinds = [event["kind"] for event in events.tail(10)]
    assert kinds == ["span", "span"]  # inner closes first
    inner_event, outer_event = events.tail(10)
    assert inner_event["name"] == "inner"
    assert outer_event["name"] == "outer"
    assert outer_event["span_kind"] == "internal"
    assert inner_event["parent_span_id"] == outer_event["span_id"]
    assert outer_event["attrs"] == {"n": 1}


def test_record_remote_files_and_emits():
    events = EventLog()
    worker = SpanTracer(seed=1, name="worker")
    with worker.span("storm.op", client="c1"):
        pass
    home = SpanTracer(seed=1, name="home", events=events)
    shipped = worker.to_records()
    span = home.record_remote(shipped[0])
    assert span.name == "storm.op"
    assert span.span_id == worker.spans[0].span_id
    assert home.spans[-1] is span
    assert events.tail(1)[0]["name"] == "storm.op"


def test_maybe_span_with_no_tracer():
    with maybe_span(None, "ignored", anything=1) as span:
        assert span is None


def test_maybe_span_with_tracer():
    tracer = SpanTracer()
    with maybe_span(tracer, "real", kind="client") as span:
        assert span is not None
    assert tracer.spans[0].name == "real"
    assert tracer.spans[0].kind == "client"
