"""Unit tests for the span tracer."""

import json

from repro.obs import SpanTracer, maybe_span


def test_spans_record_nesting_and_order():
    tracer = SpanTracer()
    with tracer.span("outer", shards=2):
        with tracer.span("inner-a"):
            pass
        with tracer.span("inner-b"):
            pass
    names = [span.name for span in tracer.spans]
    assert names == ["outer", "inner-a", "inner-b"]  # start order
    outer, inner_a, inner_b = tracer.spans
    assert outer.parent is None and outer.depth == 0
    assert inner_a.parent == outer.index and inner_a.depth == 1
    assert inner_b.parent == outer.index and inner_b.depth == 1
    assert outer.attrs == {"shards": 2}
    assert all(span.duration_s is not None for span in tracer.spans)
    assert outer.duration_s >= inner_a.duration_s


def test_span_duration_set_even_on_error():
    tracer = SpanTracer()
    try:
        with tracer.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.spans[0].duration_s is not None
    assert tracer._stack == []  # stack unwound


def test_span_set_attribute():
    tracer = SpanTracer()
    with tracer.span("work") as span:
        span.set("items", 12)
    assert tracer.spans[0].attrs["items"] == 12


def test_to_json_replays_tree():
    tracer = SpanTracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    data = json.loads(tracer.to_json())
    assert [item["name"] for item in data] == ["a", "b"]
    assert data[1]["parent"] == 0
    assert data[0]["started_at"] <= data[1]["started_at"]


def test_render_indents_by_depth():
    tracer = SpanTracer()
    with tracer.span("outer", n=1):
        with tracer.span("inner"):
            pass
    lines = tracer.render().splitlines()
    assert lines[0].endswith("outer n=1")
    assert "  inner" in lines[1]
    assert "ms" in lines[0]


def test_maybe_span_with_no_tracer():
    with maybe_span(None, "ignored", anything=1) as span:
        assert span is None


def test_maybe_span_with_tracer():
    tracer = SpanTracer()
    with maybe_span(tracer, "real") as span:
        assert span is not None
    assert tracer.spans[0].name == "real"
