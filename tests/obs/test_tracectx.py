"""Unit tests for trace-context propagation and trace assembly."""

import json

import pytest

from repro.obs import (
    EventLog,
    SpanTracer,
    TraceContext,
    TraceIdSource,
    TraceStore,
    certificate_lifecycles,
    normalize_span_record,
    render_lifecycles,
)
from repro.obs.tracectx import SPAN_ID_HEX, TRACE_ID_HEX


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        header = ctx.to_header()
        assert header == "ab" * 16 + "-" + "cd" * 8
        assert TraceContext.parse(header) == ctx

    @pytest.mark.parametrize(
        "header",
        [
            "",
            None,
            "nonsense",
            "ab" * 16,  # missing span id
            "ab" * 16 + "-" + "cd" * 7,  # short span id
            "xy" * 16 + "-" + "cd" * 8,  # non-hex trace id
            "ab" * 16 + "-" + "cd" * 8 + "-extra",
        ],
    )
    def test_parse_rejects_invalid(self, header):
        assert TraceContext.parse(header) is None

    def test_parse_normalizes_case_and_whitespace(self):
        header = ("AB" * 16 + "-" + "CD" * 8).upper()
        ctx = TraceContext.parse(f"  {header}  ")
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16


class TestTraceIdSource:
    def test_seeded_streams_replay(self):
        a = TraceIdSource(seed=42, name="srv")
        b = TraceIdSource(seed=42, name="srv")
        assert [a.trace_id(), a.span_id()] == [b.trace_id(), b.span_id()]

    def test_distinct_names_diverge(self):
        a = TraceIdSource(seed=42, name="srv")
        b = TraceIdSource(seed=42, name="client")
        assert a.trace_id() != b.trace_id()

    def test_id_widths_are_wire_valid(self):
        source = TraceIdSource(seed=1)
        trace_id, span_id = source.trace_id(), source.span_id()
        assert len(trace_id) == TRACE_ID_HEX
        assert len(span_id) == SPAN_ID_HEX
        assert TraceContext.parse(f"{trace_id}-{span_id}") is not None

    def test_unseeded_sources_do_not_collide(self):
        assert TraceIdSource().trace_id() != TraceIdSource().trace_id()


class TestTraceStore:
    def test_groups_by_trace_and_sorts_by_start(self):
        store = TraceStore()
        store.add({"name": "b", "trace_id": "t1", "span_id": "s2",
                   "parent_span_id": "s1", "started_at": 2.0, "duration_ms": 1.0})
        store.add({"name": "a", "trace_id": "t1", "span_id": "s1",
                   "parent_span_id": None, "started_at": 1.0, "duration_ms": 5.0})
        store.add({"name": "c", "trace_id": "t2", "span_id": "s3",
                   "parent_span_id": None, "started_at": 0.5, "duration_ms": 1.0})
        assert store.trace_ids() == ["t1", "t2"]
        assert [s["name"] for s in store.spans_for("t1")] == ["a", "b"]
        assert len(store) == 3
        assert store.orphan_spans() == []

    def test_orphans_are_unresolved_parents(self):
        store = TraceStore()
        stored = store.add({"name": "child", "trace_id": "t1", "span_id": "s2",
                            "parent_span_id": "missing", "started_at": 1.0,
                            "duration_ms": 1.0})
        assert store.orphan_spans() == [stored]

    def test_live_store_equals_event_replay(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventLog(path)
        tracer = SpanTracer(seed=4, events=events)
        with tracer.span("outer", domains=("a.example", "b.example")):
            with tracer.span("inner", count=3):
                pass
        live = TraceStore()
        live.add_many(tracer.to_records())
        replayed = TraceStore.from_events(
            json.loads(line) for line in path.read_text().splitlines()
        )
        assert live == replayed
        assert replayed.orphan_spans() == []
        assert len(replayed) == 2

    def test_normalize_accepts_span_events_and_span_dicts(self):
        tracer = SpanTracer(seed=2)
        with tracer.span("x", kind="client"):
            pass
        from_dict = normalize_span_record(tracer.spans[0].to_dict())
        from_record = normalize_span_record(tracer.spans[0].to_record())
        assert from_dict == from_record
        assert from_dict["kind"] == "client"
        assert from_dict["duration_ms"] is not None
        event_style = dict(from_record)
        event_style["span_kind"] = event_style.pop("kind")
        assert normalize_span_record(event_style)["kind"] == "client"


def _span(name, trace_id, span_id, started_at, duration_ms=1.0,
          parent_span_id=None, attrs=None, links=()):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_span_id": parent_span_id,
        "kind": "internal",
        "started_at": started_at,
        "duration_ms": duration_ms,
        "attrs": attrs or {},
        "links": list(links),
    }


class TestCertificateLifecycles:
    def _store(self):
        store = TraceStore()
        # Client submit span (root) -> server child -> merge link.
        store.add(_span("storm.add_pre_chain", "t1", "c1", 10.0, 50.0,
                        attrs={"domain": "a.example", "client": "sub1"}))
        store.add(_span("server.add-pre-chain", "t1", "v1", 10.01, 20.0,
                        parent_span_id="c1"))
        store.add(_span("sequencer.merge", "m1", "g1", 10.2, 30.0,
                        links=[{"trace_id": "t1", "span_id": "v1"}]))
        store.add(_span("storm.await_inclusion", "t2", "w1", 10.3, 100.0,
                        attrs={"client": "sub1", "leaves": 1}))
        store.add(_span("monitor.match", "t3", "d1", 11.0, 1.0,
                        attrs={"domains": ["a.example"], "monitor": "lw0"}))
        return store

    def test_full_chain_decomposes(self):
        lifecycles = certificate_lifecycles(self._store())
        assert len(lifecycles) == 1
        item = lifecycles[0]
        assert item["domain"] == "a.example"
        assert item["complete"] is True
        # submit at 10.0; server closes at 10.03; merge at 10.23;
        # inclusion at 10.4; detection starts at 11.0.
        assert item["sct_ms"] == pytest.approx(30.0)
        assert item["merge_ms"] == pytest.approx(230.0)
        assert item["inclusion_ms"] == pytest.approx(400.0)
        assert item["detection_ms"] == pytest.approx(1000.0)
        # Stages are ordered: each later stage is >= the previous.
        assert (item["sct_ms"] <= item["merge_ms"]
                <= item["inclusion_ms"] <= item["detection_ms"])

    def test_missing_stages_are_none(self):
        store = TraceStore()
        store.add(_span("storm.add_pre_chain", "t1", "c1", 10.0, 50.0,
                        attrs={"domain": "b.example", "client": "sub2"}))
        item = certificate_lifecycles(store)[0]
        assert item["sct_ms"] is None
        assert item["merge_ms"] is None
        assert item["complete"] is False

    def test_render_lifecycles_tabulates(self):
        text = render_lifecycles(certificate_lifecycles(self._store()))
        lines = text.splitlines()
        assert lines[0].startswith("certificate")
        assert any("a.example" in line for line in lines)
        assert lines[-1] == "1/1 certificates completed the full chain"
