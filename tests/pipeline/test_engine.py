"""The map-reduce executor."""

import pytest

from repro.pipeline.engine import MapResult, PipelineEngine
from repro.resilience import (
    DegradedResult,
    RetryPolicy,
    ShardFailedError,
    TransientLogError,
)


def square_sum(chunk):
    """Module-level so process pools can pickle it."""
    return sum(value * value for value in chunk)


def explode(_chunk):
    raise RuntimeError("worker failed")


def fail_singletons(chunk):
    """Permanent (but retryable-class) failure for one-element shards."""
    if len(chunk) == 1:
        raise TransientLogError(f"singleton shard {chunk}")
    return square_sum(chunk)


class FlakyMap:
    """Fails the first ``failures`` calls per task (serial/thread only)."""

    def __init__(self, failures=2, exc=TransientLogError):
        self.failures = failures
        self.exc = exc
        self.calls = {}

    def __call__(self, chunk):
        key = tuple(chunk)
        count = self.calls.get(key, 0) + 1
        self.calls[key] = count
        if count <= self.failures:
            raise self.exc(f"flaky {key} attempt {count}")
        return square_sum(chunk)


def fast_retry(max_attempts=3):
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.0)


class RecordingCheckpoint:
    """In-memory stand-in for HarvestCheckpoint."""

    def __init__(self, initial=None):
        self.store = dict(initial or {})
        self.recorded = []

    def completed(self):
        return dict(self.store)

    def record(self, index, payload):
        self.recorded.append(index)
        self.store[index] = payload


TASKS = [[1, 2], [3, 4], [5], [6, 7, 8]]
EXPECTED = [5, 25, 25, 149]


class TestConstruction:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            PipelineEngine(workers=0)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            PipelineEngine(shard_size=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            PipelineEngine(executor="fibers")

    def test_serial_fallback_detection(self):
        assert PipelineEngine(workers=1).serial
        assert PipelineEngine(workers=8, executor="serial").serial
        assert not PipelineEngine(workers=2).serial


class TestMap:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_in_task_order(self, executor):
        engine = PipelineEngine(workers=3, executor=executor)
        assert engine.map(square_sum, TASKS) == EXPECTED

    def test_map_reduce(self):
        engine = PipelineEngine(workers=2, executor="thread")
        assert engine.map_reduce(square_sum, TASKS, sum) == sum(EXPECTED)

    def test_empty_tasks(self):
        assert PipelineEngine(workers=2).map(square_sum, []) == []

    def test_worker_errors_propagate(self):
        engine = PipelineEngine(workers=2, executor="thread")
        with pytest.raises(RuntimeError, match="worker failed"):
            engine.map(explode, TASKS)


class TestShardContext:
    """A failing shard aborts the run with its index in the error."""

    def test_rejects_unknown_on_error(self):
        with pytest.raises(ValueError):
            PipelineEngine(on_error="ignore")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_failure_names_the_shard(self, executor):
        engine = PipelineEngine(workers=2, executor=executor)
        with pytest.raises(ShardFailedError) as excinfo:
            engine.map(fail_singletons, TASKS)
        assert excinfo.value.index == 2  # [5] is the only singleton
        assert "shard 2" in str(excinfo.value)
        assert excinfo.value.attempts == 1

    def test_map_result_carries_no_report_when_raising(self):
        result = PipelineEngine(workers=1).map(square_sum, TASKS)
        assert isinstance(result, MapResult)
        assert result.degradation is None
        assert result == EXPECTED


class TestShardRetry:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_transient_failures_are_retried_to_success(self, executor):
        engine = PipelineEngine(
            workers=2, executor=executor, retry=fast_retry(3)
        )
        flaky = FlakyMap(failures=2)
        assert engine.map(flaky, TASKS) == EXPECTED
        assert all(count == 3 for count in flaky.calls.values())

    def test_exhausted_retries_name_shard_and_attempts(self):
        engine = PipelineEngine(workers=1, retry=fast_retry(2))
        with pytest.raises(ShardFailedError) as excinfo:
            engine.map(FlakyMap(failures=5), TASKS)
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 2

    def test_non_retryable_errors_fail_fast(self):
        engine = PipelineEngine(workers=1, retry=fast_retry(4))
        flaky = FlakyMap(failures=5, exc=KeyError)
        with pytest.raises(ShardFailedError) as excinfo:
            engine.map(flaky, TASKS)
        assert excinfo.value.attempts == 1
        assert flaky.calls[(1, 2)] == 1

    def test_retried_shards_record_attempts_in_checkpoint(self):
        class AttemptsCheckpoint(RecordingCheckpoint):
            def __init__(self):
                super().__init__()
                self.attempts = {}

            def record(self, index, payload, *, attempts=1):
                super().record(index, payload)
                self.attempts[index] = attempts

        checkpoint = AttemptsCheckpoint()
        engine = PipelineEngine(workers=1, retry=fast_retry(3))
        engine.map(FlakyMap(failures=2), TASKS, checkpoint=checkpoint)
        assert checkpoint.attempts == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_legacy_checkpoints_without_attempts_still_work(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=1, retry=fast_retry(3))
        engine.map(FlakyMap(failures=1), TASKS, checkpoint=checkpoint)
        assert checkpoint.store == dict(enumerate(EXPECTED))


class TestDegradedRuns:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_failed_shards_are_reported_not_raised(self, executor):
        engine = PipelineEngine(
            workers=2,
            executor=executor,
            retry=fast_retry(2),
            on_error="degrade",
        )
        result = engine.map(fail_singletons, TASKS)
        assert result == [5, 25, None, 149]
        report = result.degradation
        assert report is not None
        assert report.failed_indices == [2]
        assert report.total_shards == 4
        assert not report.ok
        assert report.completed_shards == 3
        assert report.failed[0].attempts == 2
        assert "TransientLogError" in report.failed[0].error
        # The failed shard's wasted retry is part of the bill.
        assert report.retries == 1

    def test_clean_degrade_run_reports_ok(self):
        engine = PipelineEngine(workers=1, on_error="degrade")
        result = engine.map(square_sum, TASKS)
        assert result == EXPECTED
        assert result.degradation is not None
        assert result.degradation.ok
        assert result.degradation.failed == ()

    def test_map_reduce_skips_lost_shards_and_pairs_report(self):
        engine = PipelineEngine(
            workers=1, retry=fast_retry(2), on_error="degrade"
        )
        outcome = engine.map_reduce(fail_singletons, TASKS, sum)
        assert isinstance(outcome, DegradedResult)
        assert outcome.value == 5 + 25 + 149
        assert outcome.report.failed_indices == [2]

    def test_successful_shards_are_still_checkpointed(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=1, on_error="degrade")
        engine.map(fail_singletons, TASKS, checkpoint=checkpoint)
        assert sorted(checkpoint.recorded) == [0, 1, 3]

    def test_degrade_counts_retries_of_recovered_shards(self):
        engine = PipelineEngine(
            workers=1, retry=fast_retry(3), on_error="degrade"
        )
        result = engine.map(FlakyMap(failures=2), TASKS)
        assert result == EXPECTED
        assert result.degradation.ok
        assert result.degradation.retries == 2 * len(TASKS)


class TestCheckpointing:
    def test_completed_shards_are_skipped(self):
        # Shard 1 is pre-recorded with a sentinel value: if the engine
        # re-ran it, the sentinel would be overwritten.
        checkpoint = RecordingCheckpoint({1: -1})
        engine = PipelineEngine(workers=1)
        results = engine.map(square_sum, TASKS, checkpoint=checkpoint)
        assert results == [5, -1, 25, 149]
        assert sorted(checkpoint.recorded) == [0, 2, 3]

    def test_new_shards_are_recorded(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=2, executor="thread")
        engine.map(square_sum, TASKS, checkpoint=checkpoint)
        assert checkpoint.store == dict(enumerate(EXPECTED))

    def test_encode_decode_round_trip(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=1)
        first = engine.map(
            square_sum,
            TASKS,
            checkpoint=checkpoint,
            encode=str,
            decode=int,
        )
        resumed = engine.map(
            square_sum,
            TASKS,
            checkpoint=checkpoint,
            encode=str,
            decode=int,
        )
        assert first == resumed == EXPECTED
        assert checkpoint.store[0] == "5"
