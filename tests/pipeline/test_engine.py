"""The map-reduce executor."""

import pytest

from repro.pipeline.engine import PipelineEngine


def square_sum(chunk):
    """Module-level so process pools can pickle it."""
    return sum(value * value for value in chunk)


def explode(_chunk):
    raise RuntimeError("worker failed")


class RecordingCheckpoint:
    """In-memory stand-in for HarvestCheckpoint."""

    def __init__(self, initial=None):
        self.store = dict(initial or {})
        self.recorded = []

    def completed(self):
        return dict(self.store)

    def record(self, index, payload):
        self.recorded.append(index)
        self.store[index] = payload


TASKS = [[1, 2], [3, 4], [5], [6, 7, 8]]
EXPECTED = [5, 25, 25, 149]


class TestConstruction:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            PipelineEngine(workers=0)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            PipelineEngine(shard_size=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            PipelineEngine(executor="fibers")

    def test_serial_fallback_detection(self):
        assert PipelineEngine(workers=1).serial
        assert PipelineEngine(workers=8, executor="serial").serial
        assert not PipelineEngine(workers=2).serial


class TestMap:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_in_task_order(self, executor):
        engine = PipelineEngine(workers=3, executor=executor)
        assert engine.map(square_sum, TASKS) == EXPECTED

    def test_map_reduce(self):
        engine = PipelineEngine(workers=2, executor="thread")
        assert engine.map_reduce(square_sum, TASKS, sum) == sum(EXPECTED)

    def test_empty_tasks(self):
        assert PipelineEngine(workers=2).map(square_sum, []) == []

    def test_worker_errors_propagate(self):
        engine = PipelineEngine(workers=2, executor="thread")
        with pytest.raises(RuntimeError, match="worker failed"):
            engine.map(explode, TASKS)


class TestCheckpointing:
    def test_completed_shards_are_skipped(self):
        # Shard 1 is pre-recorded with a sentinel value: if the engine
        # re-ran it, the sentinel would be overwritten.
        checkpoint = RecordingCheckpoint({1: -1})
        engine = PipelineEngine(workers=1)
        results = engine.map(square_sum, TASKS, checkpoint=checkpoint)
        assert results == [5, -1, 25, 149]
        assert sorted(checkpoint.recorded) == [0, 2, 3]

    def test_new_shards_are_recorded(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=2, executor="thread")
        engine.map(square_sum, TASKS, checkpoint=checkpoint)
        assert checkpoint.store == dict(enumerate(EXPECTED))

    def test_encode_decode_round_trip(self):
        checkpoint = RecordingCheckpoint()
        engine = PipelineEngine(workers=1)
        first = engine.map(
            square_sum,
            TASKS,
            checkpoint=checkpoint,
            encode=str,
            decode=int,
        )
        resumed = engine.map(
            square_sum,
            TASKS,
            checkpoint=checkpoint,
            encode=str,
            decode=int,
        )
        assert first == resumed == EXPECTED
        assert checkpoint.store[0] == "5"
