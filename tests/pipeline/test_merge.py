"""Typed partial-result mergers."""

import pytest

from repro.pipeline.merge import (
    CounterMerge,
    SetUnionMerge,
    TopKMerge,
    merge_counter2d,
)
from repro.util.stats import Counter2D


class TestCounterMerge:
    def test_sums_counts(self):
        merged = CounterMerge().merge([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_preserves_first_seen_order(self):
        merged = CounterMerge().merge([{"x": 1}, {"y": 1, "x": 1}, {"z": 1}])
        assert list(merged) == ["x", "y", "z"]

    def test_empty(self):
        assert CounterMerge().merge([]) == {}


class TestTopKMerge:
    def test_ranks_merged_counts(self):
        merged = TopKMerge(2).merge([{"a": 5, "b": 1}, {"b": 9, "c": 3}])
        assert merged == [("b", 10), ("a", 5)]

    def test_ties_break_by_first_seen_order(self):
        merged = TopKMerge(3).merge([{"a": 2}, {"b": 2, "c": 2}])
        assert merged == [("a", 2), ("b", 2), ("c", 2)]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKMerge(0)


class TestSetUnionMerge:
    def test_unions(self):
        merged = SetUnionMerge().merge([{1, 2}, [2, 3], (4,)])
        assert merged == {1, 2, 3, 4}


class TestMergeCounter2D:
    def _matrix(self, cells):
        matrix = Counter2D()
        for row, col, count in cells:
            matrix.add(row, col, count)
        return matrix

    def test_cellwise_sum(self):
        a = self._matrix([("ca1", "log1", 2), ("ca2", "log1", 1)])
        b = self._matrix([("ca1", "log1", 3), ("ca1", "log2", 4)])
        merged = merge_counter2d([a, b])
        assert merged.get("ca1", "log1") == 5
        assert merged.get("ca1", "log2") == 4
        assert merged.row_total("ca1") == 9
        assert merged.col_total("log1") == 6
        assert merged.total() == 10

    def test_matches_serial_build_including_tie_order(self):
        # Two shards whose concatenation is the serial stream: the
        # merged rows()/cols() ranking (ties broken by insertion)
        # must equal the serial one.
        stream = [("b", "x", 1), ("a", "y", 1), ("c", "x", 1), ("a", "x", 1)]
        serial = self._matrix(stream)
        merged = merge_counter2d(
            [self._matrix(stream[:2]), self._matrix(stream[2:])]
        )
        assert merged.cells() == serial.cells()
        assert merged.rows() == serial.rows()
        assert merged.cols() == serial.cols()
