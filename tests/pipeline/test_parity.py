"""Parallel == serial, bit for bit, for the three ported passes.

The acceptance bar for the sharded engine: Fig. 1a/1b/1c, Fig. 2 /
Table 1, and Table 2 must come out *identical* — same numbers, same
orderings, same rendered bytes — whether computed serially or sharded
across a process pool.
"""

from datetime import date

import pytest

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, evolution, leakage
from repro.core import report as rpt
from repro.pipeline import (
    PipelineEngine,
    evolution_growth,
    evolution_matrix,
    evolution_rates,
    leakage_names,
    traffic_adoption,
)
from repro.workloads.ca_profiles import CaLoggingWorkload
from repro.workloads.domains import DomainWorkload
from repro.workloads.traffic import UplinkTrafficWorkload


@pytest.fixture(scope="module")
def engine():
    """A genuinely parallel engine with small shards (many merges)."""
    return PipelineEngine(workers=3, shard_size=512)


@pytest.fixture(scope="module")
def evolution_logs():
    run = CaLoggingWorkload(scale=2e-6, end=date(2018, 4, 30), seed=7).run()
    return run.logs


class TestEvolutionParity:
    def test_fig1a_growth(self, evolution_logs, engine):
        serial = evolution.cumulative_precert_growth(evolution_logs)
        parallel = evolution_growth(evolution_logs, engine)
        assert parallel == serial
        # Same CA iteration order, not just the same mapping.
        assert list(parallel) == list(serial)

    def test_fig1a_growth_with_date_window(self, evolution_logs, engine):
        window = dict(start=date(2017, 1, 1), end=date(2018, 3, 31))
        serial = evolution.cumulative_precert_growth(evolution_logs, **window)
        assert evolution_growth(evolution_logs, engine, **window) == serial

    def test_fig1b_rates(self, evolution_logs, engine):
        serial = evolution.relative_daily_rates(evolution_logs)
        parallel = evolution_rates(evolution_logs, engine)
        assert parallel == serial

    def test_fig1c_matrix(self, evolution_logs, engine):
        serial = evolution.ca_log_matrix(evolution_logs, "2018-04")
        parallel = evolution_matrix(evolution_logs, "2018-04", engine)
        assert parallel.cells() == serial.cells()
        # Ranked orders (count ties break by insertion) must match too:
        # they drive the rendered figure's row/column layout.
        assert parallel.rows() == serial.rows()
        assert parallel.cols() == serial.cols()
        assert rpt.render_figure1c(parallel) == rpt.render_figure1c(serial)


class TestTrafficParity:
    @pytest.fixture(scope="class")
    def streams(self):
        def build():
            workload = UplinkTrafficWorkload(connections_per_day=60, seed=42)
            return workload, BroSctAnalyzer(workload.logs)

        return build

    def test_fig2_table1_stats(self, streams, engine):
        workload, analyzer = streams()
        serial = adoption.aggregate(analyzer.analyze_stream(workload.stream()))
        workload2, analyzer2 = streams()
        parallel = traffic_adoption(workload2.stream(), analyzer2, engine)
        assert parallel == serial
        assert adoption.table1(parallel) == adoption.table1(serial)
        assert rpt.render_figure2(parallel) == rpt.render_figure2(serial)
        assert rpt.render_table1(adoption.table1(parallel)) == rpt.render_table1(
            adoption.table1(serial)
        )


@pytest.mark.slow
class TestLeakageParityAtDefaultScale:
    """Table 2 at the CLI's default 1:1000 scale (the hottest pass)."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return DomainWorkload(scale=1 / 1_000, seed=44).build()

    def test_table2_identical(self, corpus):
        engine = PipelineEngine(workers=3, shard_size=16_384)
        serial = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
        parallel = leakage_names(corpus.ct_fqdns, engine, corpus.psl)
        assert parallel == serial
        assert parallel.top_labels(20) == serial.top_labels(20)
        assert parallel.top_label_per_suffix() == serial.top_label_per_suffix()
        weight = 1.0 / corpus.scale
        assert rpt.render_table2(parallel, weight=weight) == rpt.render_table2(
            serial, weight=weight
        )


class TestSerialFallback:
    def test_workers_one_uses_serial_path(self, evolution_logs):
        serial_engine = PipelineEngine(workers=1)
        assert evolution_growth(
            evolution_logs, serial_engine
        ) == evolution.cumulative_precert_growth(evolution_logs)

    def test_default_engine_is_serial(self, evolution_logs):
        assert evolution_rates(
            evolution_logs
        ) == evolution.relative_daily_rates(evolution_logs)
