"""Parallel == serial, bit for bit, for the three ported passes.

The acceptance bar for the sharded engine: Fig. 1a/1b/1c, Fig. 2 /
Table 1, and Table 2 must come out *identical* — same numbers, same
orderings, same rendered bytes — whether computed serially or sharded
across a process pool.  The fault-injection classes extend that bar:
a seeded :class:`FlakyLog` failing 20% of shard fetches plus a retry
budget must *still* reproduce the fault-free serial output, and a
degraded run must enumerate exactly the shards it lost.
"""

import os
from datetime import date

import pytest

from repro.bro.analyzer import BroSctAnalyzer
from repro.core import adoption, evolution, leakage
from repro.core import report as rpt
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.pipeline import (
    PipelineEngine,
    analyze_log_names,
    evolution_growth,
    evolution_matrix,
    evolution_rates,
    leakage_names,
    traffic_adoption,
)
from repro.pipeline.harvest import log_entry_names
from repro.resilience import (
    DegradedResult,
    FlakyLog,
    RetryPolicy,
    ShardFailedError,
)
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest
from repro.workloads.ca_profiles import CaLoggingWorkload
from repro.workloads.domains import DomainWorkload
from repro.workloads.traffic import UplinkTrafficWorkload

# CI's fault-injection job pins one executor per matrix leg via
# REPRO_EXECUTOR; locally both run.
FAULT_EXECUTORS = (
    [os.environ["REPRO_EXECUTOR"]]
    if os.environ.get("REPRO_EXECUTOR")
    else ["process", "thread"]
)


@pytest.fixture(scope="module")
def engine():
    """A genuinely parallel engine with small shards (many merges)."""
    return PipelineEngine(workers=3, shard_size=512)


@pytest.fixture(scope="module")
def evolution_logs():
    run = CaLoggingWorkload(scale=2e-6, end=date(2018, 4, 30), seed=7).run()
    return run.logs


class TestEvolutionParity:
    def test_fig1a_growth(self, evolution_logs, engine):
        serial = evolution.cumulative_precert_growth(evolution_logs)
        parallel = evolution_growth(evolution_logs, engine)
        assert parallel == serial
        # Same CA iteration order, not just the same mapping.
        assert list(parallel) == list(serial)

    def test_fig1a_growth_with_date_window(self, evolution_logs, engine):
        window = dict(start=date(2017, 1, 1), end=date(2018, 3, 31))
        serial = evolution.cumulative_precert_growth(evolution_logs, **window)
        assert evolution_growth(evolution_logs, engine, **window) == serial

    def test_fig1b_rates(self, evolution_logs, engine):
        serial = evolution.relative_daily_rates(evolution_logs)
        parallel = evolution_rates(evolution_logs, engine)
        assert parallel == serial

    def test_fig1c_matrix(self, evolution_logs, engine):
        serial = evolution.ca_log_matrix(evolution_logs, "2018-04")
        parallel = evolution_matrix(evolution_logs, "2018-04", engine)
        assert parallel.cells() == serial.cells()
        # Ranked orders (count ties break by insertion) must match too:
        # they drive the rendered figure's row/column layout.
        assert parallel.rows() == serial.rows()
        assert parallel.cols() == serial.cols()
        assert rpt.render_figure1c(parallel) == rpt.render_figure1c(serial)


class TestTrafficParity:
    @pytest.fixture(scope="class")
    def streams(self):
        def build():
            workload = UplinkTrafficWorkload(connections_per_day=60, seed=42)
            return workload, BroSctAnalyzer(workload.logs)

        return build

    def test_fig2_table1_stats(self, streams, engine):
        workload, analyzer = streams()
        serial = adoption.aggregate(analyzer.analyze_stream(workload.stream()))
        workload2, analyzer2 = streams()
        parallel = traffic_adoption(workload2.stream(), analyzer2, engine)
        assert parallel == serial
        assert adoption.table1(parallel) == adoption.table1(serial)
        assert rpt.render_figure2(parallel) == rpt.render_figure2(serial)
        assert rpt.render_table1(adoption.table1(parallel)) == rpt.render_table1(
            adoption.table1(serial)
        )


@pytest.mark.slow
class TestLeakageParityAtDefaultScale:
    """Table 2 at the CLI's default 1:1000 scale (the hottest pass)."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return DomainWorkload(scale=1 / 1_000, seed=44).build()

    def test_table2_identical(self, corpus):
        engine = PipelineEngine(workers=3, shard_size=16_384)
        serial = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
        parallel = leakage_names(corpus.ct_fqdns, engine, corpus.psl)
        assert parallel == serial
        assert parallel.top_labels(20) == serial.top_labels(20)
        assert parallel.top_label_per_suffix() == serial.top_label_per_suffix()
        weight = 1.0 / corpus.scale
        assert rpt.render_table2(parallel, weight=weight) == rpt.render_table2(
            serial, weight=weight
        )


@pytest.fixture(scope="module")
def fault_log():
    """48 entries, 2 DNS names each: 6 shards at shard_size=8."""
    log = CTLog(
        name="Fault Target", operator="T", key=log_key("Fault Target", 256)
    )
    ca = CertificateAuthority("Fault CA", key_bits=256)
    now = utc_datetime(2018, 5, 1, 12, 0)
    for i in range(48):
        ca.issue(
            IssuanceRequest(
                (f"host{i}.fault.example", f"alt{i}.fault.example")
            ),
            [log],
            now,
        )
    return log


def _flaky(log, seed=11):
    """ISSUE acceptance profile: 20% of shard fetches fail transiently."""
    return FlakyLog(
        log,
        SeededRng(seed, "parity-faults"),
        failure_rate=0.2,
        max_consecutive=2,
        methods=("get_entries",),
    )


def _retries(n):
    """The engine the CLI builds for ``--retries n``."""
    return RetryPolicy(max_attempts=n + 1, base_delay_s=0.0)


def _fail_tail(method, args):
    """Permanent failure for every entry fetch at index >= 32.

    Module-level so process pools can pickle the predicate.  With 48
    entries and shard_size=8 this kills exactly shards 4 and 5.
    """
    return method == "get_entries" and args[0] >= 32


class TestFaultInjectionParity:
    """Transient faults + retries must not change a single byte."""

    @pytest.fixture(scope="class")
    def fault_free(self, fault_log):
        return analyze_log_names(
            fault_log, PipelineEngine(workers=1, shard_size=8)
        )

    @pytest.mark.parametrize("executor", FAULT_EXECUTORS)
    def test_flaky_run_matches_fault_free_serial(
        self, fault_log, fault_free, executor
    ):
        engine = PipelineEngine(
            workers=3, shard_size=8, executor=executor, retry=_retries(3)
        )
        result = analyze_log_names(_flaky(fault_log), engine)
        assert result == fault_free
        assert result.top_labels(10) == fault_free.top_labels(10)
        assert (
            result.top_label_per_suffix() == fault_free.top_label_per_suffix()
        )

    def test_faults_were_injected_and_are_seed_deterministic(
        self, fault_log, fault_free
    ):
        # Serial engine so the wrapper is never pickled away and its
        # counters stay observable.
        first = _flaky(fault_log)
        engine = PipelineEngine(workers=1, shard_size=8, retry=_retries(3))
        assert analyze_log_names(first, engine) == fault_free
        assert first.faults_injected > 0

        second = _flaky(fault_log)
        assert analyze_log_names(second, engine) == fault_free
        assert second.faults_injected == first.faults_injected

    def test_without_retries_faults_surface_as_shard_failures(self, fault_log):
        flaky = FlakyLog(
            fault_log,
            SeededRng(13, "no-retry"),
            failure_rate=1.0,
            max_consecutive=None,
            methods=("get_entries",),
        )
        engine = PipelineEngine(workers=1, shard_size=8)
        with pytest.raises(ShardFailedError) as excinfo:
            analyze_log_names(flaky, engine)
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 1


class TestDegradedHarvest:
    """Exhausted retries with on_error="degrade" lose exactly the
    failed shards and say so."""

    @pytest.mark.parametrize("executor", FAULT_EXECUTORS)
    def test_report_enumerates_exactly_failed_shards(
        self, fault_log, executor
    ):
        flaky = FlakyLog(
            fault_log,
            SeededRng(1, "degrade"),
            failure_rate=0.0,
            fail_when=_fail_tail,
        )
        engine = PipelineEngine(
            workers=3,
            shard_size=8,
            executor=executor,
            retry=_retries(1),
            on_error="degrade",
        )
        outcome = analyze_log_names(flaky, engine)
        assert isinstance(outcome, DegradedResult)
        assert outcome.report.failed_indices == [4, 5]
        assert outcome.report.total_shards == 6
        assert outcome.report.completed_shards == 4
        # The partial result is the exact analysis of the surviving
        # entry range [0, 32).
        surviving = leakage.analyze_names(
            log_entry_names(fault_log, 0, 32)
        )
        assert outcome.value == surviving

    def test_raise_mode_names_the_first_failed_shard(self, fault_log):
        flaky = FlakyLog(
            fault_log,
            SeededRng(1, "degrade"),
            failure_rate=0.0,
            fail_when=_fail_tail,
        )
        engine = PipelineEngine(workers=1, shard_size=8, retry=_retries(1))
        with pytest.raises(ShardFailedError) as excinfo:
            analyze_log_names(flaky, engine)
        assert excinfo.value.index == 4
        assert excinfo.value.attempts == 2


class TestSerialFallback:
    def test_workers_one_uses_serial_path(self, evolution_logs):
        serial_engine = PipelineEngine(workers=1)
        assert evolution_growth(
            evolution_logs, serial_engine
        ) == evolution.cumulative_precert_growth(evolution_logs)

    def test_default_engine_is_serial(self, evolution_logs):
        assert evolution_rates(
            evolution_logs
        ) == evolution.relative_daily_rates(evolution_logs)
