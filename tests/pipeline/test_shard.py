"""Shard planning."""

import pytest

from repro.pipeline.shard import Shard, plan_log_shards, plan_sequence_shards


class TestShard:
    def test_len_and_slice(self):
        shard = Shard(index=0, source="s", start=2, stop=5)
        assert len(shard) == 3
        assert list(shard.slice(list(range(10)))) == [2, 3, 4]

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Shard(index=0, source="s", start=5, stop=2)
        with pytest.raises(ValueError):
            Shard(index=0, source="s", start=-1, stop=2)


class TestPlanSequenceShards:
    def test_partitions_exactly(self):
        shards = plan_sequence_shards(10, 3)
        assert [(s.start, s.stop) for s in shards] == [
            (0, 3), (3, 6), (6, 9), (9, 10),
        ]
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert sum(len(s) for s in shards) == 10

    def test_empty_sequence(self):
        assert plan_sequence_shards(0, 4) == []

    def test_single_shard_when_size_covers_all(self):
        shards = plan_sequence_shards(5, 100)
        assert len(shards) == 1
        assert (shards[0].start, shards[0].stop) == (0, 5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_sequence_shards(10, 0)
        with pytest.raises(ValueError):
            plan_sequence_shards(-1, 4)


class TestPlanLogShards:
    def test_per_log_then_per_range(self):
        shards = plan_log_shards({"a": 5, "b": 0, "c": 3}, 2)
        assert [(s.source, s.start, s.stop) for s in shards] == [
            ("a", 0, 2), ("a", 2, 4), ("a", 4, 5), ("c", 0, 2), ("c", 2, 3),
        ]
        # Indices are dense and globally ordered (the merge order).
        assert [s.index for s in shards] == list(range(5))

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            plan_log_shards({"a": -1}, 2)
