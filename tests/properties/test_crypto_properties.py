"""Property-based tests for the signature scheme and SCT integrity."""

from hypothesis import given, settings, strategies as st

from repro.ct.sct import SctEntryType, SignedCertificateTimestamp, encode_sct_list
from repro.x509.crypto import KeyPair, sign, verify

KEY = KeyPair.generate("property-test-key", 256)
OTHER = KeyPair.generate("property-test-other", 256)


@given(message=st.binary(max_size=200))
@settings(max_examples=40, deadline=None)
def test_sign_verify_roundtrip(message):
    assert verify(KEY, message, sign(KEY, message))


@given(message=st.binary(max_size=200))
@settings(max_examples=40, deadline=None)
def test_cross_key_never_verifies(message):
    assert not verify(OTHER, message, sign(KEY, message))


@given(message=st.binary(min_size=1, max_size=200), flip=st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_message_tamper_never_verifies(message, flip):
    signature = sign(KEY, message)
    index = flip % len(message)
    tampered = bytearray(message)
    tampered[index] ^= 0x01
    assert not verify(KEY, bytes(tampered), signature)


@given(message=st.binary(max_size=100), flip=st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_signature_tamper_never_verifies(message, flip):
    signature = bytearray(sign(KEY, message))
    signature[flip % len(signature)] ^= 0x01
    assert not verify(KEY, message, bytes(signature))


sct_strategy = st.builds(
    lambda ts, ext, entry: _make_sct(ts, ext, entry),
    ts=st.integers(min_value=0, max_value=2**40),
    ext=st.binary(max_size=16),
    entry=st.binary(max_size=64),
)


def _make_sct(ts, ext, entry):
    payload = SignedCertificateTimestamp.signed_payload(
        KEY.key_id, ts, SctEntryType.PRECERT_ENTRY, entry, ext
    )
    return (
        SignedCertificateTimestamp(
            log_id=KEY.key_id,
            timestamp_ms=ts,
            entry_type=SctEntryType.PRECERT_ENTRY,
            signature=sign(KEY, payload),
            extensions=ext,
        ),
        entry,
    )


@given(items=st.lists(sct_strategy, min_size=0, max_size=6))
@settings(max_examples=40, deadline=None)
def test_sct_list_roundtrip(items):
    scts = [sct for sct, _ in items]
    decoded = SignedCertificateTimestamp.decode_list(encode_sct_list(scts))
    assert decoded == scts


@given(item=sct_strategy)
@settings(max_examples=40, deadline=None)
def test_sct_verifies_only_its_entry(item):
    sct, entry = item
    assert sct.verify(KEY, entry)
    assert not sct.verify(KEY, entry + b"x")
