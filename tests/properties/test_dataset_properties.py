"""Fused pass-graph algebra over randomized corpora and shard splits.

The fused traversal's correctness rests on one fact, checked here over
seeded stdlib ``random`` inputs (failures replay exactly): for *any*
contiguous partition of the corpus into shards, folding each shard
once through every extractor and reducing the partials in shard order
equals the serial single-shard run — for all registered passes at
once, including orderings that drive the rendered artifacts.
"""

import pickle
import random
from datetime import date, timedelta

from repro.core import evolution, leakage
from repro.dataset import CertCorpus, sections_graph

ROUNDS = 20

_CAS = ["Let's Encrypt", "DigiCert", "Sectigo", "GoDaddy"]
_LOGS = ["argon", "nessie", "oak"]
_LABELS = ["www", "mail", "vpn", "dev", "shop"]
_DOMAINS = ["alpha.com", "beta.org", "gamma.net"]
_EPOCH = date(2018, 1, 1)


def _random_corpus(rng, size):
    """Synthetic columns with heavy key collisions (dedup must matter)."""
    issuer, serial, day, log_name, month, is_precert, names = (
        [] for _ in range(7)
    )
    for _ in range(size):
        when = _EPOCH + timedelta(days=rng.randrange(0, 140))
        issuer.append(rng.choice(_CAS))
        # Small serial space so the same (issuer, serial) precert
        # reappears across logs, exercising cross-shard dedup.
        serial.append(rng.randrange(0, max(2, size // 3)))
        day.append(when)
        log_name.append(rng.choice(_LOGS))
        month.append(f"{when.year:04d}-{when.month:02d}")
        is_precert.append(rng.random() < 0.8)
        names.append(
            tuple(
                f"{rng.choice(_LABELS)}.{rng.choice(_DOMAINS)}"
                for _ in range(rng.randrange(0, 3))
            )
        )
    return CertCorpus(
        tuple(issuer),
        tuple(serial),
        tuple(day),
        tuple(log_name),
        tuple(month),
        tuple(is_precert),
        tuple(names),
    )


def _split_points(rng, length):
    """A random contiguous partition of ``range(length)`` (empty parts ok)."""
    cuts = sorted(rng.randrange(0, length + 1) for _ in range(3))
    return [0, *cuts, length]


def _reference(corpus, month):
    """Per-section results via the independent fold/reduce algebra."""
    precerts = [
        (r.issuer_org, r.serial, r.day)
        for r in corpus.iter_records()
        if r.is_precert
    ]
    firsts = evolution.growth_map(precerts)
    matrix_rows = [
        (r.issuer_org, r.log_name, r.month)
        for r in corpus.iter_records()
        if r.is_precert
    ]
    names = [name for row in corpus.names for name in row]
    return {
        "growth": evolution.growth_reduce([firsts]),
        "rates": evolution.rates_reduce([firsts]),
        "matrix": evolution.matrix_map(matrix_rows, month),
        "leakage": leakage.analyze_names(names),
    }


def test_any_contiguous_split_reduces_to_the_serial_result():
    for round_no in range(ROUNDS):
        rng = random.Random(9000 + round_no)
        corpus = _random_corpus(rng, rng.randrange(1, 120))
        month = f"2018-{rng.randrange(1, 6):02d}"
        graph = sections_graph(month)
        serial = _reference(corpus, month)
        edges = _split_points(rng, len(corpus))
        shards = [
            graph.run_shard(corpus.view(a, b).iter_records()).partials
            for a, b in zip(edges, edges[1:])
        ]
        fused = graph.reduce(shards)
        assert fused["growth"] == serial["growth"]
        assert list(fused["growth"]) == list(serial["growth"])
        assert fused["rates"] == serial["rates"]
        assert fused["matrix"].cells() == serial["matrix"].cells()
        assert fused["matrix"].rows() == serial["matrix"].rows()
        assert fused["matrix"].cols() == serial["matrix"].cols()
        assert fused["leakage"] == serial["leakage"]


def test_split_through_pickled_views_changes_nothing():
    """Shard payloads crossing a (simulated) pool boundary stay exact."""
    for round_no in range(ROUNDS):
        rng = random.Random(9500 + round_no)
        corpus = _random_corpus(rng, rng.randrange(1, 80))
        graph = sections_graph("2018-02")
        edges = _split_points(rng, len(corpus))
        direct = graph.reduce(
            [
                graph.run_shard(corpus.view(a, b).iter_records()).partials
                for a, b in zip(edges, edges[1:])
            ]
        )
        shipped_graph = pickle.loads(pickle.dumps(graph))
        shipped = shipped_graph.reduce(
            [
                shipped_graph.run_shard(
                    pickle.loads(
                        pickle.dumps(corpus.view(a, b))
                    ).iter_records()
                ).partials
                for a, b in zip(edges, edges[1:])
            ]
        )
        assert shipped["growth"] == direct["growth"]
        assert shipped["rates"] == direct["rates"]
        assert shipped["matrix"].cells() == direct["matrix"].cells()
        assert shipped["leakage"] == direct["leakage"]


def test_view_pickle_roundtrip_for_random_ranges():
    for round_no in range(ROUNDS):
        rng = random.Random(9900 + round_no)
        corpus = _random_corpus(rng, rng.randrange(1, 60))
        start = rng.randrange(0, len(corpus) + 1)
        stop = rng.randrange(start, len(corpus) + 1)
        view = corpus.view(start, stop)
        loaded = pickle.loads(pickle.dumps(view))
        assert list(loaded.iter_records()) == list(view.iter_records())
