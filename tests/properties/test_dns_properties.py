"""Property-based tests for FQDN validation and PSL parsing."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.dnscore.name import (
    is_valid_fqdn,
    normalize_name,
    split_labels,
)
from repro.dnscore.psl import default_psl

# Strategy for plausible labels (valid by construction).
valid_label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)
valid_tld = st.sampled_from(["com", "org", "de", "co", "uk", "tech", "io"])
valid_fqdn = st.builds(
    lambda labels, tld: ".".join(labels + [tld]),
    labels=st.lists(valid_label, min_size=1, max_size=4),
    tld=valid_tld,
)

arbitrary_text = st.text(
    alphabet=string.ascii_letters + string.digits + ".-_*! ",
    max_size=80,
)


@given(name=valid_fqdn)
@settings(max_examples=80, deadline=None)
def test_constructed_fqdns_are_valid(name):
    assert is_valid_fqdn(name)


@given(name=arbitrary_text)
@settings(max_examples=150, deadline=None)
def test_validator_is_total_and_stable(name):
    """The validator never raises and is idempotent under normalization."""
    result = is_valid_fqdn(name)
    assert result == is_valid_fqdn(normalize_name(name))


@given(name=valid_fqdn)
@settings(max_examples=80, deadline=None)
def test_normalization_idempotent(name):
    assert normalize_name(normalize_name(name)) == normalize_name(name)


@given(name=valid_fqdn)
@settings(max_examples=80, deadline=None)
def test_split_join_roundtrip(name):
    labels = split_labels(name)
    assert ".".join(labels) == normalize_name(name)


@given(name=valid_fqdn)
@settings(max_examples=100, deadline=None)
def test_psl_split_reassembles(name):
    """labels + registrable domain always re-concatenate to the FQDN."""
    psl = default_psl()
    labels, registrable, suffix = psl.split(name)
    normalized = normalize_name(name)
    if registrable is None:
        # The name is itself a public suffix.
        assert psl.is_public_suffix(normalized)
        return
    rebuilt = ".".join(labels + [registrable]) if labels else registrable
    assert rebuilt == normalized
    assert registrable.endswith(suffix)
    # The registrable domain has exactly one label above the suffix.
    owner = registrable[: -(len(suffix) + 1)]
    assert owner and "." not in owner


@given(name=valid_fqdn)
@settings(max_examples=80, deadline=None)
def test_public_suffix_is_suffix(name):
    psl = default_psl()
    suffix = psl.public_suffix(name)
    normalized = normalize_name(name)
    assert normalized == suffix or normalized.endswith("." + suffix)


@given(
    label=valid_label,
    name=valid_fqdn,
)
@settings(max_examples=80, deadline=None)
def test_prepending_label_extends_subdomains(label, name):
    psl = default_psl()
    base_labels, base_reg, _ = psl.split(name)
    assume(base_reg is not None)
    extended_labels, extended_reg, _ = psl.split(f"{label}.{name}")
    assert extended_reg == base_reg
    assert extended_labels == [label] + base_labels
