"""Property-based tests for the extension substrates (OCSP, chains, redaction)."""

from datetime import timedelta

from hypothesis import given, settings, strategies as st

from repro.ct.redaction import RedactionPolicy, redact_name
from repro.dnscore.psl import default_psl
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest
from repro.x509.crypto import KeyPair
from repro.x509.ocsp import CertStatus, OcspResponder

NOW = utc_datetime(2018, 4, 1)
CA = CertificateAuthority("Prop OCSP CA", key_bits=256)
RESPONDER = OcspResponder("Prop OCSP CA", KeyPair.generate("prop-ocsp", 256))

label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)


@given(name=label, revoke=st.booleans(), age_days=st.integers(0, 6))
@settings(max_examples=30, deadline=None)
def test_ocsp_response_always_verifies_within_validity(name, revoke, age_days):
    pair = CA.issue(
        IssuanceRequest((f"{name}.prop.example",), embed_scts=False), [], NOW
    )
    if revoke:
        RESPONDER.revoke(pair.final_certificate, NOW)
    response = RESPONDER.respond(pair.final_certificate, NOW)
    check_at = NOW + timedelta(days=age_days)
    assert response.verify(RESPONDER.key, check_at)
    expected = CertStatus.REVOKED if revoke else CertStatus.GOOD
    assert response.status is expected


@given(
    labels=st.lists(label, min_size=0, max_size=4),
    keep=st.lists(label, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_redaction_preserves_structure(labels, keep):
    """Redaction never changes the label count or registrable domain."""
    psl = default_psl()
    name = ".".join(labels + ["propbase", "co", "uk"])
    policy = RedactionPolicy(keep_labels=tuple(keep))
    redacted = redact_name(name, policy, psl)
    original_split = psl.split(name)
    redacted_split = psl.split(redacted)
    assert len(redacted_split[0]) == len(original_split[0])
    assert redacted_split[1] == original_split[1]
    # Kept labels survive verbatim; others become the placeholder.
    for original, out in zip(original_split[0], redacted_split[0]):
        if original in keep:
            assert out == original
        else:
            assert out == "?"


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_chain_validation_total_for_any_hierarchy(seed):
    """Any freshly built hierarchy produces chains that validate."""
    from repro.x509.chain import CaHierarchy, validate_chain

    hierarchy = CaHierarchy(f"Brand{seed}")
    intermediate = hierarchy.add_intermediate(
        f"Brand{seed} CA", not_before=utc_datetime(2016, 1, 1)
    )
    pair = intermediate.issue(
        IssuanceRequest((f"h{seed}.example",), embed_scts=False), [], NOW
    )
    chain = hierarchy.chain_for(pair.final_certificate)
    result = validate_chain(
        chain,
        {hierarchy.root_certificate.subject_cn: hierarchy.root_key},
        NOW,
        known_keys=hierarchy.keys_by_subject(),
    )
    assert result.valid, result.reasons
