"""Incremental fold == batch recompute, bit-identical, serial and pooled.

The live-analytics contract: folding N ``CertFeed.poll`` batches
one-by-one into :class:`~repro.dataset.LiveAnalytics` produces exactly
the aggregates a batch recompute over the same entry stream produces —
not approximately, but bit-identically, including the map orderings
the rendered artifacts depend on.  Checked here over seeded randomized
issuance schedules (failures replay exactly), against both the serial
batch path and a real process-pool :func:`analyze_corpus` run, and
through the version-1 JSON serialization.

Two reference corpora appear on purpose: the *streamed* corpus
(``append_batch`` per poll — the same record order the live fold saw)
must match including insertion order, while the log-major
``from_logs`` corpus visits records in a different order, so it must
match in value and in the (sorted) ``/analytics`` JSON body.
"""

import json
import random
from datetime import timedelta

from repro.ct.feed import CertFeed
from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.dataset import CertCorpus, LiveAnalytics, analyze_corpus
from repro.dataset.sections import section2_graph
from repro.pipeline.engine import PipelineEngine
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

ROUNDS = 4
MONTH = "2018-04"
EPOCH = utc_datetime(2018, 4, 1, 8, 0)


def _grow_world(rng, live):
    """Random issuance schedule polled through a feed into ``live``.

    Returns ``(logs, streamed, polls)``: the grown logs, the corpus
    appended poll-batch by poll-batch (byte-for-byte the stream the
    live fold consumed), and how many polls carried entries.
    """
    logs = [
        CTLog(
            name=f"Prop Log {i}",
            operator="P",
            key=log_key(f"prop:{rng.randint(0, 10**9)}:{i}", 256),
        )
        for i in range(rng.randint(2, 3))
    ]
    cas = [
        CertificateAuthority(f"Prop CA {i}", key_bits=256)
        for i in range(rng.randint(2, 4))
    ]
    streamed = CertCorpus.empty()
    batch = []
    feed = CertFeed(logs, analytics=live)
    feed.subscribe("collector", batch.append)
    polls = 0
    for round_no in range(rng.randint(3, 6)):
        when = EPOCH + timedelta(days=rng.randint(0, 27), hours=round_no)
        for serial in range(rng.randint(0, 5)):
            ca = rng.choice(cas)
            ca.issue(
                IssuanceRequest(
                    (f"p{round_no}-{serial}-{rng.randint(0, 99)}.example",)
                ),
                [rng.choice(logs)],
                when,
            )
        if feed.poll(when):
            polls += 1
        feed.dispatch()
        delta = streamed.append_batch(batch, with_names=False)
        assert len(delta) == len(batch)
        batch.clear()
    return logs, streamed, polls


def _assert_identical(live_results, batch_results):
    assert live_results["growth"] == batch_results["growth"]
    assert list(live_results["growth"]) == list(batch_results["growth"])
    assert live_results["rates"] == batch_results["rates"]
    assert live_results["matrix"].cells() == batch_results["matrix"].cells()
    assert live_results["matrix"].rows() == batch_results["matrix"].rows()
    assert live_results["matrix"].cols() == batch_results["matrix"].cols()


def test_folded_polls_equal_batch_recompute_serial():
    for round_no in range(ROUNDS):
        rng = random.Random(7100 + round_no)
        live = LiveAnalytics(section2_graph(MONTH))
        logs, streamed, polls = _grow_world(rng, live)
        assert live.records_folded == len(streamed)
        assert live.batches_folded == polls

        # Same stream order: identical down to map insertion order.
        batch = section2_graph(MONTH).run(streamed.iter_records())
        _assert_identical(live.results(), batch)
        serial = analyze_corpus(
            streamed, section2_graph(MONTH), PipelineEngine(workers=1)
        )
        _assert_identical(live.results(), serial)

        # Log-major order (from_logs) visits the same records in a
        # different order: equal values, bit-identical JSON body.
        log_major = CertCorpus.from_logs(logs, with_names=False)
        assert len(log_major) == len(streamed)
        recomputed = LiveAnalytics(section2_graph(MONTH))
        recomputed.fold_records(log_major.iter_records())
        assert json.dumps(
            live.to_dict()["sections"], sort_keys=True
        ) == json.dumps(recomputed.to_dict()["sections"], sort_keys=True)
        by_order = section2_graph(MONTH).run(log_major.iter_records())
        assert live.results()["growth"] == by_order["growth"]
        assert live.results()["rates"] == by_order["rates"]
        assert (
            live.results()["matrix"].cells() == by_order["matrix"].cells()
        )


def test_folded_polls_equal_batch_recompute_process_pool():
    rng = random.Random(7300)
    live = LiveAnalytics(section2_graph(MONTH))
    logs, streamed, _ = _grow_world(rng, live)
    assert len(streamed) > 0
    pooled = analyze_corpus(
        streamed,
        section2_graph(MONTH),
        PipelineEngine(workers=3, shard_size=4, executor="process"),
    )
    _assert_identical(live.results(), pooled)
