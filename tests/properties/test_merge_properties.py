"""Merge algebra properties: typed mergers and metric snapshots.

Parallel correctness rests on two facts checked here over randomized
inputs (seeded stdlib ``random``, so failures replay exactly):

* every typed merger reduces *any* contiguous shard split of a stream
  to the serial result, including key order;
* :class:`MetricsSnapshot` merging is associative, commutative, and
  has ``empty()`` as identity — byte-compared via ``to_json`` — so a
  process pool can fold worker snapshots in any grouping.

Float sums stay exact because observations are dyadic rationals
(``k / 1024``), for which IEEE addition is associative.
"""

import random

from repro.obs import COUNT_BOUNDS, MetricsRegistry, MetricsSnapshot
from repro.pipeline.merge import (
    CounterMerge,
    SetUnionMerge,
    TopKMerge,
    merge_counter2d,
)
from repro.util.stats import Counter2D

ROUNDS = 25


def _random_stream(rng, size):
    """A key stream with heavy repeats so merges actually collide."""
    alphabet = [f"k{i}" for i in range(max(2, size // 4))]
    return [rng.choice(alphabet) for _ in range(size)]


def _splits(rng, items):
    """A random contiguous partition of ``items`` (possibly empty parts)."""
    cuts = sorted(rng.randrange(0, len(items) + 1) for _ in range(3))
    edges = [0, *cuts, len(items)]
    return [items[a:b] for a, b in zip(edges, edges[1:])]


def _counts(stream):
    counts = {}
    for key in stream:
        counts[key] = counts.get(key, 0) + 1
    return counts


def test_counter_merge_equals_serial_for_any_split():
    for round_no in range(ROUNDS):
        rng = random.Random(1000 + round_no)
        stream = _random_stream(rng, rng.randrange(1, 60))
        serial = _counts(stream)
        partials = [_counts(part) for part in _splits(rng, stream)]
        merged = CounterMerge().merge(partials)
        assert merged == serial
        assert list(merged) == list(serial)  # first-seen key order too


def test_topk_merge_equals_serial_ranking():
    for round_no in range(ROUNDS):
        rng = random.Random(2000 + round_no)
        stream = _random_stream(rng, rng.randrange(1, 80))
        k = rng.randrange(1, 6)
        import collections

        serial = collections.Counter(stream).most_common(k)
        partials = [_counts(part) for part in _splits(rng, stream)]
        assert TopKMerge(k).merge(partials) == serial


def test_set_union_merge_equals_serial():
    for round_no in range(ROUNDS):
        rng = random.Random(3000 + round_no)
        stream = _random_stream(rng, rng.randrange(1, 60))
        partials = _splits(rng, stream)
        assert SetUnionMerge().merge(partials) == set(stream)


def test_counter2d_merge_equals_serial_for_any_split():
    for round_no in range(ROUNDS):
        rng = random.Random(4000 + round_no)
        pairs = [
            (rng.choice("abc"), rng.choice("xyz"))
            for _ in range(rng.randrange(1, 50))
        ]
        serial = Counter2D()
        for row, col in pairs:
            serial.add(row, col)
        partials = []
        for part in _splits(rng, pairs):
            partial = Counter2D()
            for row, col in part:
                partial.add(row, col)
            partials.append(partial)
        merged = merge_counter2d(partials)
        assert merged.cells() == serial.cells()
        assert merged.rows() == serial.rows()  # insertion order preserved
        assert merged.cols() == serial.cols()


def _random_snapshot(rng):
    """A registry filled with dyadic-rational observations, snapshotted."""
    registry = MetricsRegistry()
    for _ in range(rng.randrange(0, 8)):
        registry.inc(rng.choice(("c.alpha", "c.beta")), rng.randrange(1, 9))
    for _ in range(rng.randrange(0, 4)):
        registry.set_gauge("g.peak", rng.randrange(0, 1 << 20) / 1024)
    for _ in range(rng.randrange(0, 8)):
        registry.observe(
            "h.lat",
            rng.randrange(0, 1 << 20) / 1024,
            bounds=COUNT_BOUNDS,
        )
    return registry.snapshot()


def test_snapshot_merge_commutative():
    for round_no in range(ROUNDS):
        rng = random.Random(5000 + round_no)
        a, b = _random_snapshot(rng), _random_snapshot(rng)
        assert a.merge(b).to_json() == b.merge(a).to_json()


def test_snapshot_merge_associative():
    for round_no in range(ROUNDS):
        rng = random.Random(6000 + round_no)
        a, b, c = (_random_snapshot(rng) for _ in range(3))
        assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()


def test_snapshot_merge_identity():
    for round_no in range(ROUNDS):
        rng = random.Random(7000 + round_no)
        snap = _random_snapshot(rng)
        empty = MetricsSnapshot.empty()
        assert empty.merge(snap).to_json() == snap.to_json()
        assert snap.merge(empty).to_json() == snap.to_json()


def test_snapshot_merge_all_order_independent():
    """Folding worker snapshots in any permutation yields the same bytes."""
    for round_no in range(ROUNDS):
        rng = random.Random(8000 + round_no)
        snapshots = [_random_snapshot(rng) for _ in range(rng.randrange(2, 6))]
        reference = MetricsSnapshot.merge_all(snapshots).to_json()
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        assert MetricsSnapshot.merge_all(shuffled).to_json() == reference
