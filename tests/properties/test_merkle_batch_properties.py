"""Batched Merkle appends are bit-identical to sequential appends.

The MMD sequencer's whole correctness story rests on one equivalence:
``append_many`` over *any* batch split must leave the tree in exactly
the state N single ``append`` calls produce — same roots at every
historical size, same proofs, same duplicate-leaf index semantics.
These tests drive that equivalence with seeded stdlib randomness
(deterministic across runs, no extra dependencies needed for the
batch-split generator).
"""

import random

import pytest

from repro.ct.merkle import (
    MerkleTree,
    leaf_hash,
    verify_consistency_proof,
    verify_inclusion_proof,
)

SEEDS = (2018, 6962, 424242)


def random_leaves(rng: random.Random, count: int) -> list:
    """Leaves with deliberate duplicates (dedup index semantics matter)."""
    leaves = []
    for _ in range(count):
        if leaves and rng.random() < 0.2:
            leaves.append(rng.choice(leaves))  # duplicate an earlier leaf
        else:
            leaves.append(rng.randbytes(rng.randrange(0, 33)))
    return leaves


def random_splits(rng: random.Random, count: int) -> list:
    """Partition ``count`` items into random contiguous batch sizes."""
    sizes = []
    remaining = count
    while remaining:
        take = rng.randint(1, remaining)
        sizes.append(take)
        remaining -= take
    return sizes


def sequential_reference(leaves):
    tree = MerkleTree()
    roots_by_size = {0: tree.root()}
    for leaf in leaves:
        tree.append(leaf)
        roots_by_size[tree.size] = tree.root()
    return tree, roots_by_size


@pytest.mark.parametrize("seed", SEEDS)
def test_append_many_matches_sequential_appends(seed):
    rng = random.Random(seed)
    for trial in range(10):
        leaves = random_leaves(rng, rng.randint(1, 48))
        reference, roots_by_size = sequential_reference(leaves)

        batched = MerkleTree()
        cursor = 0
        for size in random_splits(rng, len(leaves)):
            indices = batched.append_many(leaves[cursor : cursor + size])
            assert indices == list(range(cursor, cursor + size))
            cursor += size
            # The root after every batch equals the sequential root at
            # that intermediate size — batches are invisible in history.
            assert batched.root() == roots_by_size[cursor]

        assert batched.size == reference.size
        for tree_size in range(len(leaves) + 1):
            assert batched.root(tree_size) == reference.root(tree_size)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_tree_proofs_verify_and_match(seed):
    rng = random.Random(seed)
    leaves = random_leaves(rng, 37)
    reference, _ = sequential_reference(leaves)

    batched = MerkleTree()
    cursor = 0
    for size in random_splits(rng, len(leaves)):
        batched.append_many(leaves[cursor : cursor + size])
        cursor += size

    root = batched.root()
    for index in range(len(leaves)):
        proof = batched.inclusion_proof(index)
        assert proof == reference.inclusion_proof(index)
        assert verify_inclusion_proof(
            leaves[index], index, len(leaves), proof, root
        )
    for old_size in range(len(leaves) + 1):
        proof = batched.consistency_proof(old_size)
        assert proof == reference.consistency_proof(old_size)
        assert verify_consistency_proof(
            old_size, len(leaves), batched.root(old_size), root, proof
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_leaf_index_keeps_first_occurrence_across_batches(seed):
    rng = random.Random(seed)
    leaves = random_leaves(rng, 40)
    reference, _ = sequential_reference(leaves)

    batched = MerkleTree()
    cursor = 0
    for size in random_splits(rng, len(leaves)):
        batched.append_many(leaves[cursor : cursor + size])
        cursor += size

    first_seen = {}
    for position, leaf in enumerate(leaves):
        first_seen.setdefault(leaf_hash(leaf), position)
    for digest, expected in first_seen.items():
        assert batched.leaf_index(digest) == expected
        assert reference.leaf_index(digest) == expected


def test_append_many_empty_batch_is_a_noop():
    tree = MerkleTree()
    tree.append(b"anchor")
    root = tree.root()
    assert tree.append_many([]) == []
    assert tree.extend_leaf_hashes([]) == []
    assert tree.size == 1
    assert tree.root() == root


def test_extend_leaf_hashes_matches_append_leaf_hash():
    rng = random.Random(99)
    digests = [leaf_hash(rng.randbytes(16)) for _ in range(23)]

    sequential = MerkleTree()
    for digest in digests:
        sequential.append_leaf_hash(digest)

    batched = MerkleTree()
    batched.extend_leaf_hashes(digests[:7])
    batched.extend_leaf_hashes(digests[7:8])
    batched.extend_leaf_hashes(digests[8:])

    assert batched.size == sequential.size
    for tree_size in range(len(digests) + 1):
        assert batched.root(tree_size) == sequential.root(tree_size)
    for index in range(len(digests)):
        assert batched.inclusion_proof(index) == sequential.inclusion_proof(index)


def test_single_giant_batch_equals_per_leaf_appends():
    rng = random.Random(5)
    leaves = [rng.randbytes(24) for _ in range(257)]  # crosses power-of-two edges
    reference, _ = sequential_reference(leaves)
    batched = MerkleTree()
    batched.append_many(leaves)
    assert batched.root() == reference.root()
    for tree_size in (1, 2, 127, 128, 129, 255, 256, 257):
        assert batched.root(tree_size) == reference.root(tree_size)
