"""Property-based tests for the Merkle tree invariants (RFC 6962)."""

from hypothesis import given, settings, strategies as st

from repro.ct.merkle import (
    MerkleTree,
    verify_consistency_proof,
    verify_inclusion_proof,
)

leaves_strategy = st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=64)


def build(leaves):
    tree = MerkleTree()
    for leaf in leaves:
        tree.append(leaf)
    return tree


@given(leaves=leaves_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_every_inclusion_proof_verifies(leaves, data):
    tree = build(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = tree.inclusion_proof(index)
    assert verify_inclusion_proof(
        leaves[index], index, len(leaves), proof, tree.root()
    )


@given(leaves=leaves_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_inclusion_proof_rejects_other_leaf(leaves, data):
    tree = build(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = tree.inclusion_proof(index)
    tampered = leaves[index] + b"!"
    assert not verify_inclusion_proof(
        tampered, index, len(leaves), proof, tree.root()
    )


@given(leaves=leaves_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_consistency_between_any_two_sizes(leaves, data):
    tree = build(leaves)
    new_size = len(leaves)
    old_size = data.draw(st.integers(min_value=0, max_value=new_size))
    proof = tree.consistency_proof(old_size, new_size)
    assert verify_consistency_proof(
        old_size, new_size, tree.root(old_size), tree.root(new_size), proof
    )


@given(leaves=leaves_strategy)
@settings(max_examples=60, deadline=None)
def test_append_only_preserves_prefix_roots(leaves):
    tree = MerkleTree()
    roots = []
    for leaf in leaves:
        tree.append(leaf)
        roots.append(tree.root())
    # Re-computing historical roots after all appends gives the same values.
    for size, expected in enumerate(roots, start=1):
        assert tree.root(size) == expected


@given(
    leaves=leaves_strategy,
    extra=st.lists(st.binary(max_size=20), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_tampered_history_fails_consistency(leaves, extra):
    tree = build(leaves)
    old_size = len(leaves)
    old_root = tree.root()
    for leaf in extra:
        tree.append(leaf)
    # A *different* old root (tampered history) must not verify.
    fake_old_root = bytes(b ^ 0xFF for b in old_root)
    proof = tree.consistency_proof(old_size, tree.size)
    assert verify_consistency_proof(
        old_size, tree.size, old_root, tree.root(), proof
    )
    assert not verify_consistency_proof(
        old_size, tree.size, fake_old_root, tree.root(), proof
    )


@given(leaves=leaves_strategy)
@settings(max_examples=40, deadline=None)
def test_distinct_leaf_sets_distinct_roots(leaves):
    tree = build(leaves)
    mutated = list(leaves)
    mutated[0] = mutated[0] + b"\x00"
    other = build(mutated)
    assert tree.root() != other.root()
