"""Property-based tests for cross-module invariants."""

from hypothesis import given, settings, strategies as st

from repro.ct.loglist import build_default_logs
from repro.ct.verification import diagnose_mismatch, validate_embedded_scts
from repro.dnscore.edns import ClientSubnet
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceBug, IssuanceRequest

LOGS = build_default_logs(with_capacities=False, key_bits=256)
KEYS = {log.log_id: log.key for log in LOGS.values()}
NAMES = {log.log_id: log.name for log in LOGS.values()}
LOG_CHOICES = [LOGS["Google Pilot log"], LOGS["Google Rocketeer log"],
               LOGS["Google Icarus log"], LOGS["Venafi log"]]

name_strategy = st.from_regex(r"[a-z][a-z0-9]{2,12}\.example\.com", fullmatch=True)


@given(
    name=name_strategy,
    log_count=st.integers(min_value=1, max_value=4),
    with_ip=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_clean_issuance_always_validates(name, log_count, with_ip):
    """For any name/log-set/SAN mix, a bug-free pipeline yields valid SCTs."""
    ca = CertificateAuthority("Prop CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(
            (name,), ip_addresses=("192.0.2.1",) if with_ip else ()
        ),
        LOG_CHOICES[:log_count],
        utc_datetime(2018, 4, 1),
    )
    result = validate_embedded_scts(
        pair.final_certificate, ca.issuer_key_hash, KEYS, NAMES
    )
    assert result.all_valid
    assert len(result.verdicts) == log_count
    assert diagnose_mismatch(pair.precertificate, pair.final_certificate) == []


@given(
    name=name_strategy,
    bug=st.sampled_from([IssuanceBug.SAN_REORDER, IssuanceBug.EXTENSION_REORDER,
                         IssuanceBug.SAN_SWAP]),
)
@settings(max_examples=30, deadline=None)
def test_structural_bugs_always_detected(name, bug):
    """Any TBS-changing bug makes every embedded SCT invalid."""
    ca = CertificateAuthority("Buggy CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest((name,), ip_addresses=("192.0.2.7",)),
        [LOGS["Google Pilot log"]],
        utc_datetime(2018, 4, 1),
        bug=bug,
    )
    result = validate_embedded_scts(
        pair.final_certificate, ca.issuer_key_hash, KEYS, NAMES
    )
    assert result.any_invalid
    assert diagnose_mismatch(pair.precertificate, pair.final_certificate)


@given(
    octets=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
    prefix=st.integers(min_value=0, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_client_subnet_covers_its_origin(octets, prefix):
    address = ".".join(str(o) for o in octets)
    subnet = ClientSubnet.from_ipv4(address, prefix)
    assert subnet.covers(address)


@given(seed=st.integers(min_value=0, max_value=2**32), name=st.text(max_size=20))
@settings(max_examples=50, deadline=None)
def test_rng_fork_determinism(seed, name):
    a = SeededRng(seed).fork(name)
    b = SeededRng(seed).fork(name)
    assert a.random() == b.random()
    assert a.token(8) == b.token(8)
