"""Property-based tests for the newer substrates (zonefile, rDNS, feed)."""

from hypothesis import given, settings, strategies as st

from repro.dnscore.rdns import ReverseZone, ipv6_ptr_name, ipv6_to_nibbles, walk_rdns_tree
from repro.dnscore.records import RecordType
from repro.dnscore.zone import Zone
from repro.dnscore.zonefile import load_zone, parse_zone_file, serialize_zone

label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,8}[a-z0-9])?", fullmatch=True)
ipv4 = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda o: ".".join(map(str, o))
)


@given(
    entries=st.lists(
        st.tuples(label, st.sampled_from([RecordType.A, RecordType.TXT]), ipv4),
        min_size=1,
        max_size=12,
        unique_by=lambda e: (e[0], e[1]),
    )
)
@settings(max_examples=50, deadline=None)
def test_zone_serialize_parse_roundtrip(entries):
    zone = Zone("prop.example")
    for owner, rtype, value in entries:
        zone.add_simple(f"{owner}.prop.example", rtype, value)
    text = serialize_zone(zone)
    reparsed = load_zone(text, "prop.example")
    assert sorted(map(str, reparsed.all_records())) == sorted(
        map(str, zone.all_records())
    )


@given(owners=st.lists(label, min_size=1, max_size=10, unique=True))
@settings(max_examples=50, deadline=None)
def test_zone_file_owner_count_preserved(owners):
    text = "$ORIGIN p.org.\n" + "\n".join(
        f"{owner} IN A 192.0.2.1" for owner in owners
    )
    records = parse_zone_file(text)
    assert len(records) == len(owners)
    assert {record.name for record in records} == {
        f"{owner}.p.org" for owner in owners
    }


ipv6_strategy = st.lists(
    st.integers(0, 0xFFFF), min_size=8, max_size=8
).map(lambda groups: ":".join(f"{g:x}" for g in groups))


@given(address=ipv6_strategy)
@settings(max_examples=80, deadline=None)
def test_ptr_name_structure(address):
    name = ipv6_ptr_name(address)
    parts = name.split(".")
    assert len(parts) == 34  # 32 nibbles + ip6 + arpa
    assert parts[-2:] == ["ip6", "arpa"]
    assert len(ipv6_to_nibbles(address)) == 32


@given(
    addresses=st.lists(
        st.integers(1, 0xFFFF).map(lambda n: f"2001:db8::{n:x}"),
        min_size=1,
        max_size=20,
        unique=True,
    )
)
@settings(max_examples=30, deadline=None)
def test_rdns_walk_finds_exactly_the_published_set(addresses):
    zone = ReverseZone()
    expected = {}
    for index, address in enumerate(addresses):
        owner = zone.add_ptr(address, f"h{index}.example")
        expected[owner] = f"h{index}.example"
    result = walk_rdns_tree(zone, [])
    assert result.discovered == expected
