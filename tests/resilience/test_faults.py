"""FlakyLog: deterministic seeded fault injection around CTLog."""

import pickle

import pytest

from repro.ct.log import CTLog, LogOverloadedError
from repro.ct.loglist import log_key
from repro.resilience import (
    FlakyLog,
    LogTimeoutError,
    RetryPolicy,
    TransientLogError,
)
from repro.util.rng import SeededRng
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


@pytest.fixture()
def log():
    log = CTLog(name="Flaky Target", operator="T", key=log_key("Flaky Target", 256))
    ca = CertificateAuthority("Flaky CA", key_bits=256)
    for i in range(8):
        ca.issue(IssuanceRequest((f"f{i}.example",)), [log], NOW)
    return log


def drain(flaky, calls=40):
    """Hammer get_entries and collect the outcome sequence."""
    outcomes = []
    for _ in range(calls):
        try:
            flaky.get_entries(0, flaky.size - 1)
            outcomes.append("ok")
        except Exception as exc:  # noqa: BLE001 - recording fault types
            outcomes.append(type(exc).__name__)
    return outcomes


class TestConstruction:
    def test_rejects_bad_rate(self, log):
        with pytest.raises(ValueError):
            FlakyLog(log, SeededRng(1), failure_rate=1.5)

    def test_rejects_unknown_kind(self, log):
        with pytest.raises(ValueError):
            FlakyLog(log, SeededRng(1), kinds=("gremlins",))

    def test_rejects_unwrappable_method(self, log):
        with pytest.raises(ValueError):
            FlakyLog(log, SeededRng(1), methods=("disqualify",))


class TestDelegation:
    def test_reads_pass_through_when_rate_zero(self, log):
        flaky = FlakyLog(log, SeededRng(1), failure_rate=0.0)
        assert flaky.size == 8
        assert flaky.name == "Flaky Target"
        assert len(flaky.get_entries(0, 7)) == 8
        assert flaky.get_sth(NOW).tree_size == 8
        assert flaky.entries is log.entries

    def test_submissions_are_wrapped(self, log):
        flaky = FlakyLog(
            log,
            SeededRng(1),
            failure_rate=1.0,
            max_consecutive=None,
            methods=("add_pre_chain",),
        )
        ca = CertificateAuthority("Sub CA", key_bits=256)
        with pytest.raises((TransientLogError, LogOverloadedError)):
            ca.issue(IssuanceRequest(("sub.example",)), [flaky], NOW)


class TestInjection:
    def test_same_seed_same_fault_sequence(self, log):
        a = FlakyLog(log, SeededRng(5), failure_rate=0.4)
        b = FlakyLog(log, SeededRng(5), failure_rate=0.4)
        assert drain(a) == drain(b)
        assert a.faults_injected == b.faults_injected > 0

    def test_different_seed_different_sequence(self, log):
        a = FlakyLog(log, SeededRng(5), failure_rate=0.4)
        b = FlakyLog(log, SeededRng(6), failure_rate=0.4)
        assert drain(a) != drain(b)

    def test_fault_kinds_match_registry(self, log):
        flaky = FlakyLog(log, SeededRng(5), failure_rate=0.5)
        kinds = set(drain(flaky, 60))
        assert kinds <= {
            "ok",
            "LogTimeoutError",
            "LogOverloadedError",
            "TransientLogError",
        }
        assert flaky.faults_injected == sum(flaky.injected_by_kind.values())
        assert flaky.injected_by_method.get("get_entries") == flaky.faults_injected

    def test_single_kind_restriction(self, log):
        flaky = FlakyLog(
            log, SeededRng(5), failure_rate=0.6, kinds=("timeout",)
        )
        outcomes = set(drain(flaky, 40))
        assert outcomes <= {"ok", "LogTimeoutError"}
        assert "LogTimeoutError" in outcomes

    def test_max_consecutive_bounds_failures_per_call_site(self, log):
        flaky = FlakyLog(
            log, SeededRng(5), failure_rate=1.0, max_consecutive=2
        )
        outcomes = drain(flaky, 30)
        # rate 1.0 against one call site: two failures, then a forced
        # success, repeating — so every third call gets through.
        for i, outcome in enumerate(outcomes):
            if i % 3 == 2:
                assert outcome == "ok"
            else:
                assert outcome != "ok"

    def test_retry_of_max_consecutive_always_recovers(self, log):
        flaky = FlakyLog(
            log, SeededRng(9), failure_rate=1.0, max_consecutive=2
        )
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        outcome = policy.run(lambda: flaky.get_entries(0, 7))
        assert len(outcome.value) == 8
        assert outcome.attempts == 3

    def test_unbounded_consecutive_failures(self, log):
        flaky = FlakyLog(
            log, SeededRng(5), failure_rate=1.0, max_consecutive=None
        )
        assert "ok" not in drain(flaky, 10)

    def test_overload_faults_are_real_overload_errors(self, log):
        flaky = FlakyLog(
            log,
            SeededRng(5),
            failure_rate=1.0,
            max_consecutive=None,
            kinds=("overload",),
        )
        with pytest.raises(LogOverloadedError):
            flaky.get_entries(0, 7)


class TestFailWhen:
    def test_predicate_fails_permanently(self, log):
        flaky = FlakyLog(
            log,
            SeededRng(5),
            failure_rate=0.0,
            fail_when=lambda method, args: args[0] >= 4,
        )
        assert len(flaky.get_entries(0, 3)) == 4
        for _ in range(5):
            with pytest.raises(TransientLogError):
                flaky.get_entries(4, 7)

    def test_predicate_bypasses_rate(self, log):
        flaky = FlakyLog(
            log,
            SeededRng(5),
            failure_rate=0.0,
            fail_when=lambda method, args: True,
        )
        with pytest.raises(TransientLogError):
            flaky.get_entries(0, 7)


class TestPickling:
    def test_flaky_log_round_trips(self, log):
        flaky = FlakyLog(log, SeededRng(5), failure_rate=0.4)
        clone = pickle.loads(pickle.dumps(flaky))
        assert clone.size == 8
        assert drain(clone) == drain(flaky)
