"""RetryPolicy: classification, backoff schedule, and the retry loop."""

import pytest

from repro.ct.log import LogDisqualifiedError, LogOverloadedError
from repro.resilience import (
    LogTimeoutError,
    RetryExhaustedError,
    RetryPolicy,
    TransientLogError,
)
from repro.util.rng import SeededRng


def make_policy(**kwargs):
    kwargs.setdefault("base_delay_s", 0.0)
    kwargs.setdefault("rng", SeededRng(7, "test-retry"))
    return RetryPolicy(**kwargs)


class Flaky:
    """Callable failing a scripted number of times before succeeding."""

    def __init__(self, failures, exc=TransientLogError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom #{self.calls}")
        return "ok"


class TestConstruction:
    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            make_policy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            make_policy(base_delay_s=-1.0)

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            make_policy(multiplier=0.5)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            make_policy(jitter=1.0)


class TestClassification:
    def test_overload_is_retryable(self):
        assert make_policy().is_retryable(LogOverloadedError("over"))

    def test_transient_and_timeout_are_retryable(self):
        policy = make_policy()
        assert policy.is_retryable(TransientLogError("t"))
        assert policy.is_retryable(LogTimeoutError("t"))

    def test_disqualified_is_terminal(self):
        assert not make_policy().is_retryable(LogDisqualifiedError("dq"))

    def test_unknown_errors_are_not_retryable(self):
        assert not make_policy().is_retryable(KeyError("k"))

    def test_terminal_beats_retryable_on_overlap(self):
        policy = make_policy(
            retryable=(RuntimeError,), terminal=(LogDisqualifiedError,)
        )
        # LogDisqualifiedError is a RuntimeError, but terminal wins.
        assert not policy.is_retryable(LogDisqualifiedError("dq"))
        assert policy.is_retryable(RuntimeError("other"))


class TestBackoffSchedule:
    def test_exponential_growth_and_cap(self):
        policy = make_policy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0, jitter=0.0
        )
        assert [policy.backoff_delay(n) for n in (1, 2, 3, 4)] == [
            1.0,
            2.0,
            4.0,
            5.0,
        ]

    def test_zero_base_means_no_sleeping(self):
        policy = make_policy(base_delay_s=0.0)
        assert policy.backoff_delay(1) == 0.0
        assert policy.backoff_delay(10) == 0.0

    def test_jitter_is_bounded_and_seed_deterministic(self):
        a = make_policy(base_delay_s=1.0, jitter=0.25, rng=SeededRng(3, "j"))
        b = make_policy(base_delay_s=1.0, jitter=0.25, rng=SeededRng(3, "j"))
        delays_a = [a.backoff_delay(1) for _ in range(20)]
        delays_b = [b.backoff_delay(1) for _ in range(20)]
        assert delays_a == delays_b
        assert all(0.75 <= d <= 1.25 for d in delays_a)
        assert len(set(delays_a)) > 1  # actually jittered


class TestRunLoop:
    def test_success_first_try(self):
        outcome = make_policy().run(lambda: 42)
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.retried == 0

    def test_recovers_within_budget(self):
        fn = Flaky(failures=2)
        outcome = make_policy(max_attempts=3).run(fn)
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert fn.calls == 3

    def test_exhaustion_raises_with_attempt_count_and_cause(self):
        fn = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError) as excinfo:
            make_policy(max_attempts=3).run(fn)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientLogError)
        assert fn.calls == 3

    def test_terminal_error_propagates_immediately(self):
        fn = Flaky(failures=5, exc=LogDisqualifiedError)
        with pytest.raises(LogDisqualifiedError):
            make_policy(max_attempts=4).run(fn)
        assert fn.calls == 1

    def test_non_retryable_error_propagates_immediately(self):
        fn = Flaky(failures=5, exc=KeyError)
        with pytest.raises(KeyError):
            make_policy(max_attempts=4).run(fn)
        assert fn.calls == 1

    def test_on_retry_callback_and_injected_sleep(self):
        sleeps = []
        notes = []
        policy = make_policy(
            max_attempts=3,
            base_delay_s=1.0,
            jitter=0.0,
            sleep=sleeps.append,
        )
        outcome = policy.run(
            Flaky(failures=2), on_retry=lambda n, exc: notes.append(n)
        )
        assert outcome.attempts == 3
        assert sleeps == [1.0, 2.0]
        assert notes == [1, 2]

    def test_policy_is_picklable_for_process_pools(self):
        import pickle

        policy = make_policy(max_attempts=4, base_delay_s=0.5)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.max_attempts == 4
        assert clone.run(lambda: "ok").value == "ok"
