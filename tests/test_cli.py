"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import COMMANDS, build_parser, main
from repro.obs import EVENT_SCHEMA_VERSION, MetricsSnapshot


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, output


def test_list(capsys):
    code, output = run_cli(capsys, "list")
    assert code == 0
    for name in ("fig1a", "table4", "sec43"):
        assert name in output


def test_parser_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_table3_runs(capsys):
    code, output = run_cli(capsys, "table3", "--scale", "0.002", "--seed", "3")
    assert code == 0
    assert "Apple" in output
    assert "PayPal" in output


def test_table4_runs(capsys):
    code, output = run_cli(capsys, "table4", "--seed", "2")
    assert code == 0
    assert "CT log entry" in output
    assert "★15169" in output


def test_sec34_runs(capsys):
    code, output = run_cli(capsys, "sec34")
    assert code == 0
    assert "16" in output
    assert "GlobalSign" in output


def test_table2_runs_small(capsys):
    code, output = run_cli(capsys, "table2", "--scale", "0.0001")
    assert code == 0
    assert "www" in output


def test_sec43_with_ablations(capsys):
    code, output = run_cli(
        capsys, "sec43", "--scale", "0.00002", "--ablations"
    )
    assert code == 0
    assert "ablation" in output


def test_threatintel_runs(capsys):
    code, output = run_cli(capsys, "threatintel", "--seed", "4")
    assert code == 0
    assert "Quasi Networks" in output


def test_table2_parallel_output_identical(capsys):
    code, serial = run_cli(capsys, "table2", "--scale", "0.0001", "--seed", "5")
    assert code == 0
    code, parallel = run_cli(
        capsys,
        "table2", "--scale", "0.0001", "--seed", "5",
        "--workers", "2", "--shard-size", "1000",
    )
    assert code == 0
    assert parallel == serial


def test_fig1b_parallel_output_identical(capsys):
    args = ("fig1b", "--scale", "0.000002")
    code, serial = run_cli(capsys, *args)
    assert code == 0
    code, parallel = run_cli(capsys, *args, "--workers", "3")
    assert code == 0
    assert parallel == serial


def test_parser_defaults_to_serial():
    args = build_parser().parse_args(["fig1a"])
    assert args.workers == 1
    assert args.shard_size is None


def test_parser_fault_tolerance_defaults():
    args = build_parser().parse_args(["fig1a"])
    assert args.retries == 0
    assert args.backoff == pytest.approx(0.05)
    assert args.on_error == "raise"


def test_parser_rejects_unknown_on_error():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig1a", "--on-error", "ignore"])


def test_retries_and_degrade_do_not_change_output(capsys):
    args = ("table2", "--scale", "0.0001", "--seed", "5")
    code, baseline = run_cli(capsys, *args)
    assert code == 0
    code, tolerant = run_cli(
        capsys, *args,
        "--workers", "2", "--shard-size", "1000",
        "--retries", "3", "--backoff", "0", "--on-error", "degrade",
    )
    assert code == 0
    # No faults in a plain run: the fault-tolerant configuration must
    # be byte-identical to the serial baseline.
    assert tolerant == baseline


def test_parser_observability_defaults():
    args = build_parser().parse_args(["fig1a"])
    assert args.metrics_out is None
    assert args.trace is False


def test_metrics_out_writes_snapshot_without_touching_stdout(capsys, tmp_path):
    args = ("table2", "--scale", "0.0001", "--seed", "5")
    code, baseline = run_cli(capsys, *args)
    assert code == 0
    path = tmp_path / "metrics.json"
    code, instrumented = run_cli(
        capsys, *args, "--workers", "2", "--shard-size", "1000",
        "--metrics-out", str(path),
    )
    assert code == 0
    assert instrumented == baseline  # instrumentation changes no bytes
    snap = MetricsSnapshot.from_json(path.read_text())
    assert snap.counter("pipeline.shards_planned") > 0
    assert snap.counter("pipeline.shards_completed") == snap.counter(
        "pipeline.shards_planned"
    )
    assert json.loads(path.read_text())["version"] == 1


def test_trace_renders_tree_on_stderr_only(capsys):
    args = (
        "table2", "--scale", "0.0001", "--seed", "5",
        "--workers", "2", "--shard-size", "1000",
    )
    code = main(list(args))
    baseline = capsys.readouterr().out
    code = main([*args, "--trace"])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out == baseline  # stdout untouched
    assert "cli.table2" in captured.err
    assert "pipeline.map_reduce" in captured.err
    assert "pipeline.reduce" in captured.err


def test_all_commands_registered():
    assert set(COMMANDS) == {
        "fig1a", "fig1b", "fig1c", "sec2", "fig2", "table1", "sec32",
        "sec33", "sec34", "table2", "sec43", "table3", "table4",
        "threatintel", "projection", "status", "serve", "loadstorm",
        "watch", "gossip", "lifecycle",
    }


def test_parser_telemetry_defaults():
    args = build_parser().parse_args(["fig1a"])
    assert args.trace_out is None
    assert args.events_out is None
    assert args.status_out is None


def test_trace_out_writes_span_tree_without_touching_stdout(capsys, tmp_path):
    args = (
        "table2", "--scale", "0.0001", "--seed", "5",
        "--workers", "2", "--shard-size", "1000",
    )
    code, baseline = run_cli(capsys, *args)
    assert code == 0
    path = tmp_path / "trace.json"
    code, traced = run_cli(capsys, *args, "--trace-out", str(path))
    assert code == 0
    assert traced == baseline  # stdout untouched
    spans = json.loads(path.read_text())
    names = [span["name"] for span in spans]
    assert "cli.table2" in names
    assert "pipeline.map_reduce" in names
    assert spans[0]["attrs"]["seed"] == 5
    # Root span has no parent; children point at ancestors by index.
    assert spans[0]["parent"] is None
    assert all(
        span["parent"] is not None for span in spans if span["depth"] > 0
    )
    assert path.read_text().endswith("\n")


def test_events_out_writes_live_jsonl(capsys, tmp_path):
    from repro.obs import read_events, replay_counters

    args = ("table2", "--scale", "0.0001", "--seed", "5")
    code, baseline = run_cli(capsys, *args)
    assert code == 0
    path = tmp_path / "events.jsonl"
    metrics_path = tmp_path / "metrics.json"
    code, instrumented = run_cli(
        capsys, *args, "--workers", "2", "--shard-size", "1000",
        "--events-out", str(path), "--metrics-out", str(metrics_path),
    )
    assert code == 0
    assert instrumented == baseline  # instrumentation changes no bytes
    events = read_events(path)
    kinds = [event["kind"] for event in events]
    assert kinds[0] == "run_start"
    assert kinds[-1] == "run_finish"
    assert "map_start" in kinds and "shard_finish" in kinds
    # Envelope invariants: one run id, gapless seq, current schema.
    assert len({event["run"] for event in events}) == 1
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert all(event["v"] == EVENT_SCHEMA_VERSION for event in events)
    # The event stream replays to the snapshot's pipeline counters.
    snap = MetricsSnapshot.from_json(metrics_path.read_text())
    replayed = replay_counters(events)
    for key, value in replayed.items():
        if key.startswith("pipeline."):
            assert snap.counters.get(key) == value, key


def test_status_renders_verdicts_and_writes_json(capsys, tmp_path):
    path = tmp_path / "status.json"
    code, output = run_cli(capsys, "status", "--status-out", str(path))
    assert code == 0
    assert "overall failing" in output
    assert "degraded" in output and "healthy" in output
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["overall"] == "failing"
    verdicts = {name: log["verdict"] for name, log in payload["logs"].items()}
    assert verdicts["Symantec log"] == "failing"
    assert verdicts["DigiCert Log Server"] == "degraded"
    assert verdicts["Google Pilot log"] == "healthy"


def test_status_is_deterministic(capsys):
    code, first = run_cli(capsys, "status", "--seed", "11")
    assert code == 0
    code, second = run_cli(capsys, "status", "--seed", "11")
    assert code == 0
    assert second == first


def test_sec2_matches_separate_commands(capsys):
    """The fused sec2 artifact is the three §2 artifacts' bytes."""
    scale = ("--scale", "0.000002")
    code, fused = run_cli(capsys, "sec2", *scale)
    assert code == 0
    _, fig1a = run_cli(capsys, "fig1a", *scale)
    _, fig1b = run_cli(capsys, "fig1b", *scale)
    _, fig1c = run_cli(capsys, "fig1c", *scale)
    assert fused == fig1a.rstrip("\n") + "\n\n" + fig1b.rstrip("\n") + (
        "\n\n"
    ) + fig1c.rstrip("\n") + "\n"


def test_sec2_parallel_output_identical(capsys):
    args = ("sec2", "--scale", "0.000002")
    code, serial = run_cli(capsys, *args)
    assert code == 0
    code, parallel = run_cli(
        capsys, *args, "--workers", "2", "--shard-size", "512"
    )
    assert code == 0
    assert parallel == serial


def test_serve_runs_for_duration_and_reports(capsys):
    code, output = run_cli(
        capsys,
        "serve", "--duration-s", "0.2", "--log-entries", "4", "--seed", "9",
    )
    assert code == 0
    assert (
        "serving 'Repro Serve Log' (4 entries, per-entry writes) "
        "at http://127.0.0.1:"
    ) in output
    for endpoint in (
        "get-sth", "get-entries", "get-proof-by-hash",
        "get-sth-consistency", "add-pre-chain",
    ):
        assert f"/ct/v1/{endpoint}" in output
    assert "served 'Repro Serve Log': tree size 4" in output


def test_serve_batched_mode_reports_sequencer_stats(capsys):
    code, output = run_cli(
        capsys,
        "serve", "--duration-s", "0.2", "--log-entries", "4", "--seed", "9",
        "--merge-interval", "0.05", "--max-batch", "16",
    )
    assert code == 0
    assert "(4 entries, batched writes, merge every 0.05s)" in output
    assert "sequencer repro-serve-log: 0 merges" in output


def test_serve_is_actually_reachable_while_up(capsys):
    """Scrape get-sth from a `repro serve` instance while it serves."""
    import re
    import threading
    import time
    import urllib.request

    result = {}

    def run():
        result["code"] = main(
            ["serve", "--duration-s", "1.5", "--log-entries", "3"]
        )

    thread = threading.Thread(target=run)
    thread.start()
    try:
        base = None
        for _ in range(100):
            banner = capsys.readouterr().out
            match = re.search(r"at (http://127\.0\.0\.1:\d+)", banner)
            if match:
                base = match.group(1)
                break
            time.sleep(0.02)
        assert base, "serve never printed its URL"
        with urllib.request.urlopen(
            f"{base}/ct/v1/get-sth", timeout=10
        ) as response:
            sth = json.loads(response.read().decode())
        assert sth["tree_size"] == 3
    finally:
        thread.join()
    assert result["code"] == 0


def test_loadstorm_reports_and_writes_sidecar(capsys, tmp_path):
    path = tmp_path / "storm.json"
    code, output = run_cli(
        capsys,
        "loadstorm", "--log-entries", "8", "--browsers", "2",
        "--monitors", "1", "--submitters", "1", "--seed", "4",
        "--executor", "thread", "--storm-out", str(path),
    )
    assert code == 0
    assert "Load storm" in output
    assert "p99" in output
    assert "0 failed   0 transport errors" in output
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
    assert payload["clients"] == 4
    assert payload["submissions_ok"] == 10
    assert payload["verification_failures"] == 0
    assert payload["transport_errors"] == 0
    # Per-entry writes merge synchronously, but the submitter still
    # proves its leaves included before exiting.
    assert payload["inclusions_verified"] == 1


def test_watch_streams_and_cross_checks(capsys):
    code, output = run_cli(capsys, "watch", "--seed", "7")
    assert code == 0
    assert "CT live analytics — seed 7, 6 poll rounds" in output
    assert "schema v1" in output
    assert "growth (Fig 1a)" in output
    assert "matrix (Table 1)" in output
    assert (
        "cross-check: incremental fold == batch recompute" in output
    )


def test_watch_is_deterministic(capsys):
    code, first = run_cli(capsys, "watch", "--seed", "3")
    assert code == 0
    code, second = run_cli(capsys, "watch", "--seed", "3")
    assert code == 0
    assert first == second


def test_watch_writes_analytics_snapshot(capsys, tmp_path):
    path = tmp_path / "analytics.json"
    code, output = run_cli(
        capsys, "watch", "--seed", "7", "--analytics-out", str(path)
    )
    assert code == 0
    snapshot = json.loads(path.read_text())
    assert snapshot["version"] == 1
    assert set(snapshot["sections"]) == {"growth", "rates", "matrix"}
    assert snapshot["records_folded"] > 0
    assert snapshot["batches_folded"] == 6
    # The rendering and the sidecar agree on the record count.
    assert f"{snapshot['records_folded']} records" in output


def test_loadstorm_serial_executor_matches_population(capsys):
    code, output = run_cli(
        capsys,
        "loadstorm", "--log-entries", "6", "--browsers", "1",
        "--monitors", "1", "--submitters", "0", "--executor", "serial",
    )
    assert code == 0
    assert "serial pool" in output
    assert "2 clients" in output
