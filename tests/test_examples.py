"""Smoke tests: every example script runs cleanly.

``full_reproduction.py`` is exercised separately (and more cheaply)
via :mod:`tests.test_paper`, so it is excluded here.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "ct_phishing_monitor.py",
    "misissuance_audit.py",
    "honeypot_study.py",
    "log_auditor.py",
    "watchlist_service.py",
    "subdomain_recon.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2_000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_are_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | {"full_reproduction.py"}
