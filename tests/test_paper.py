"""Smoke tests for the one-call paper reproduction."""

import pytest

from repro.paper import PaperScales, reproduce_paper


@pytest.fixture(scope="module")
def results():
    scales = PaperScales(
        evolution=1 / 2_000_000,
        traffic_connections_per_day=60,
        hosting=1 / 200_000,
        domains=1 / 20_000,
        enumeration_domains=1 / 50_000,
        phishing=1 / 1_000,
    )
    return reproduce_paper(seed=3, scales=scales)


def test_all_sections_render(results):
    sections = results.sections()
    assert len(sections) == 14
    combined = results.render()
    for marker in (
        "Figure 1a", "Figure 1c", "Figure 2", "Table 1",
        "Section 3.2", "Section 3.3", "Section 3.4",
        "Table 2", "Section 4.3", "Table 3", "CT log entry",
        "threat intelligence",
    ):
        assert marker in combined, marker


def test_headline_results_present(results):
    assert results.misissuance_report.invalid_certificate_count == 16
    assert len(results.honeypot.domains) == 11
    assert results.traffic_stats.total > 0
    assert results.enumeration_report.discovered > 0
    assert results.phishing_report.count("Apple") > 0


def test_scales_are_respected(results):
    # Tiny scales => tiny simulated populations.
    assert results.scan_stats.unique_certificates < 1_000
    assert results.leakage_stats.unique_fqdns < 50_000
