"""Tests for the three-stage active scan pipeline."""

import pytest

from repro.dnscore.records import RecordType
from repro.dnscore.resolver import DnsUniverse, RecursiveResolver
from repro.dnscore.zone import Zone
from repro.tls.scanner import TlsScanner, zmap_scan
from repro.tls.server import HttpsEndpoint, ServerSite
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 18)


@pytest.fixture()
def world(fresh_logs):
    ca = CertificateAuthority("Scan CA", key_bits=256)
    universe = DnsUniverse()
    zone = Zone("scan.example")
    universe.add_zone(zone)
    endpoints = {}

    def host(name, ip, logs=(), port_open=True):
        pair = ca.issue(
            IssuanceRequest((name,), embed_scts=bool(logs)), list(logs), NOW
        )
        endpoint = endpoints.setdefault(ip, HttpsEndpoint(ip, port_open=port_open))
        endpoint.add_site(ServerSite(name, pair.final_certificate))
        zone.add_simple(name, RecordType.A, ip)
        return pair

    host("a.scan.example", "10.0.0.1", [fresh_logs["Google Pilot log"]])
    host("b.scan.example", "10.0.0.1")
    host("c.scan.example", "10.0.0.2")
    host("down.scan.example", "10.0.0.3", port_open=False)
    resolver = RecursiveResolver("scan", universe)
    return endpoints, resolver, zone


def test_zmap_scan_finds_open_ports(world):
    endpoints, _, _ = world
    open_ips = zmap_scan(endpoints, ["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.9"])
    assert open_ips == ["10.0.0.1", "10.0.0.2"]


def test_zmap_scan_other_port_empty(world):
    endpoints, _, _ = world
    assert zmap_scan(endpoints, ["10.0.0.1"], port=8443) == []


def test_scan_resolves_and_handshakes(world):
    endpoints, resolver, _ = world
    scanner = TlsScanner(resolver, endpoints)
    records = scanner.scan(
        ["a.scan.example", "b.scan.example", "c.scan.example"], NOW
    )
    assert len(records) == 3
    by_domain = {record.domain: record for record in records}
    assert by_domain["a.scan.example"].certificate.has_embedded_scts
    assert not by_domain["b.scan.example"].certificate.has_embedded_scts


def test_scan_skips_unresolvable(world):
    endpoints, resolver, _ = world
    scanner = TlsScanner(resolver, endpoints)
    records = scanner.scan(["missing.scan.example"], NOW)
    assert records == []


def test_scan_skips_closed_ports(world):
    endpoints, resolver, _ = world
    scanner = TlsScanner(resolver, endpoints)
    records = scanner.scan(["down.scan.example"], NOW)
    assert records == []


def test_sni_gets_correct_certificate_on_shared_ip(world):
    endpoints, resolver, _ = world
    scanner = TlsScanner(resolver, endpoints)
    records = scanner.scan(["b.scan.example"], NOW)
    assert records[0].certificate.subject_cn == "b.scan.example"


def test_resolve_targets_returns_addresses(world):
    endpoints, resolver, _ = world
    scanner = TlsScanner(resolver, endpoints)
    targets = scanner.resolve_targets(["a.scan.example", "nope.scan.example"], NOW)
    assert targets == {"a.scan.example": ["10.0.0.1"]}
