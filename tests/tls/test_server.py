"""Tests for HTTPS endpoints with SNI multiplexing."""

import pytest

from repro.tls.server import HttpsEndpoint, ServerSite
from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest


@pytest.fixture()
def ca256():
    return CertificateAuthority("TLS CA", key_bits=256)


def make_site(ca, name, logs=(), now=None):
    pair = ca.issue(
        IssuanceRequest((name,), embed_scts=bool(logs)),
        list(logs),
        now or utc_datetime(2018, 5, 1),
    )
    return ServerSite(name, pair.final_certificate), pair


def test_sni_selects_site(ca256):
    endpoint = HttpsEndpoint("192.0.2.1")
    a, _ = make_site(ca256, "a.example")
    b, _ = make_site(ca256, "b.example")
    endpoint.add_site(a)
    endpoint.add_site(b)
    assert endpoint.handshake("b.example") is b
    assert endpoint.handshake("A.EXAMPLE") is a


def test_unknown_sni_falls_back_to_default(ca256):
    endpoint = HttpsEndpoint("192.0.2.1")
    a, _ = make_site(ca256, "a.example")
    endpoint.add_site(a)
    assert endpoint.handshake("unknown.example") is a
    assert endpoint.handshake(None) is a


def test_wildcard_site_matches(ca256):
    endpoint = HttpsEndpoint("192.0.2.1")
    wild, _ = make_site(ca256, "*.example.org")
    endpoint.add_site(wild)
    assert endpoint.handshake("www.example.org") is wild


def test_closed_port_refuses(ca256):
    endpoint = HttpsEndpoint("192.0.2.1", port_open=False)
    a, _ = make_site(ca256, "a.example")
    endpoint.add_site(a)
    assert endpoint.handshake("a.example") is None


def test_empty_endpoint_refuses():
    assert HttpsEndpoint("192.0.2.1").handshake("x.example") is None


def test_certificate_count_dedups(ca256):
    endpoint = HttpsEndpoint("192.0.2.1")
    site, _ = make_site(ca256, "shared.example")
    endpoint.add_site(site)
    endpoint.add_site(ServerSite("alias.example", site.certificate))
    assert len(endpoint.sites) == 2
    assert endpoint.certificate_count() == 1


def test_serves_any_sct(ca256, fresh_logs):
    endpoint = HttpsEndpoint("192.0.2.1")
    plain, _ = make_site(ca256, "plain.example")
    endpoint.add_site(plain)
    assert not endpoint.serves_any_sct()
    sct_site, _ = make_site(ca256, "sct.example", [fresh_logs["Google Pilot log"]])
    endpoint.add_site(sct_site)
    assert endpoint.serves_any_sct()
