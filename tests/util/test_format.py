"""Tests for the paper-style number formatting."""

from repro.util.format import duration_human, human_percent, si_count


def test_si_count_giga():
    assert si_count(26_500_000_000) == "26.5G"


def test_si_count_mega():
    assert si_count(61_100_000) == "61.1M"


def test_si_count_kilo():
    assert si_count(303_000) == "303k"


def test_si_count_small():
    assert si_count(55) == "55"


def test_si_count_drops_trailing_zero():
    assert si_count(4_000_000) == "4M"


def test_si_count_fractional_small():
    assert si_count(1.5) == "1.5"


def test_human_percent():
    assert human_percent(0.3261) == "32.61%"
    assert human_percent(0.687, 1) == "68.7%"


def test_duration_seconds():
    assert duration_human(73) == "73s"
    assert duration_human(197) == "197s"


def test_duration_minutes():
    assert duration_human(73 * 60) == "73m"
    assert duration_human(111 * 60) == "111m"


def test_duration_days():
    assert duration_human(19 * 86_400) == "19d"


def test_duration_boundaries():
    assert duration_human(599) == "599s"
    assert duration_human(601).endswith("m")
