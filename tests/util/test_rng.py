"""Tests for the deterministic, forkable RNG."""

import pytest

from repro.util.rng import SeededRng


def test_same_seed_same_sequence():
    a = SeededRng(7, "x")
    b = SeededRng(7, "x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    a = SeededRng(7, "x")
    b = SeededRng(7, "y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_independent_of_parent_consumption():
    parent1 = SeededRng(7, "root")
    parent2 = SeededRng(7, "root")
    parent2.random()  # consume from one parent only
    child1 = parent1.fork("c")
    child2 = parent2.fork("c")
    assert [child1.random() for _ in range(5)] == [child2.random() for _ in range(5)]


def test_fork_names_compose():
    a = SeededRng(7, "root").fork("a").fork("b")
    assert a.name == "root/a/b"


def test_chance_extremes():
    rng = SeededRng(1)
    assert rng.chance(1.0) is True
    assert rng.chance(0.0) is False
    assert rng.chance(1.5) is True
    assert rng.chance(-0.5) is False


def test_chance_rate_is_plausible():
    rng = SeededRng(5, "chance")
    hits = sum(1 for _ in range(10_000) if rng.chance(0.3))
    assert 2_700 <= hits <= 3_300


def test_token_alphabet_and_length():
    rng = SeededRng(2)
    token = rng.token(12)
    assert len(token) == 12
    assert all(c in "abcdefghijklmnopqrstuvwxyz0123456789" for c in token)


def test_token_custom_alphabet():
    rng = SeededRng(2)
    assert set(rng.token(50, "ab")) <= {"a", "b"}


def test_random_bytes_length():
    rng = SeededRng(3)
    assert len(rng.random_bytes(16)) == 16
    assert rng.random_bytes(0) == b""


def test_weighted_index_distribution():
    rng = SeededRng(4, "wi")
    counts = [0, 0, 0]
    for _ in range(6_000):
        counts[rng.weighted_index([1.0, 2.0, 3.0])] += 1
    assert counts[0] < counts[1] < counts[2]
    assert abs(counts[2] / 6_000 - 0.5) < 0.05


def test_weighted_index_rejects_nonpositive_sum():
    rng = SeededRng(4)
    with pytest.raises(ValueError):
        rng.weighted_index([0.0, 0.0])


def test_zipf_weights_shape():
    rng = SeededRng(1)
    weights = rng.zipf_weights(4)
    assert weights == [1.0, 0.5, 1 / 3, 0.25]


def test_poisson_zero_rate():
    rng = SeededRng(1)
    assert rng.poisson(0) == 0


def test_poisson_mean_small_lambda():
    rng = SeededRng(9, "poisson")
    samples = [rng.poisson(3.0) for _ in range(5_000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 3.0) < 0.15


def test_poisson_mean_large_lambda_uses_normal_approx():
    rng = SeededRng(9, "poisson-large")
    samples = [rng.poisson(2_000.0) for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 2_000.0) < 30
    assert all(s >= 0 for s in samples)


def test_poisson_negative_raises():
    with pytest.raises(ValueError):
        SeededRng(1).poisson(-1.0)


def test_subsample_probability_one_keeps_all():
    rng = SeededRng(1)
    assert rng.subsample([1, 2, 3], 1.0) == [1, 2, 3]


def test_shuffle_and_sample_deterministic():
    a, b = SeededRng(11, "s"), SeededRng(11, "s")
    la, lb = list(range(20)), list(range(20))
    a.shuffle(la)
    b.shuffle(lb)
    assert la == lb
    assert a.sample(range(100), 5) == b.sample(range(100), 5)
