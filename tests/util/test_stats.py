"""Tests for statistics helpers."""

import pytest

from repro.util.stats import Counter2D, TopK, cumulative, gini, percentile, share


def test_share_normal_and_zero():
    assert share(1, 4) == 0.25
    assert share(1, 0) == 0.0


def test_percentile_interpolates():
    values = [0.0, 10.0, 20.0, 30.0]
    assert percentile(values, 0) == 0.0
    assert percentile(values, 100) == 30.0
    assert percentile(values, 50) == 15.0


def test_percentile_single_value():
    assert percentile([5.0], 75) == 5.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_n1_exact():
    for q in (0, 1, 50, 99, 100):
        assert percentile([5.0], q) == 5.0


def test_percentile_n2_exact():
    values = [1.0, 2.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 25) == 1.25
    assert percentile(values, 50) == 1.5
    # Small samples interpolate; p99 of two points is NOT the max.
    assert percentile(values, 99) == pytest.approx(1.99)
    assert percentile(values, 100) == 2.0


def test_percentile_n3_exact():
    values = [10.0, 20.0, 40.0]
    assert percentile(values, 25) == 15.0
    assert percentile(values, 50) == 20.0
    assert percentile(values, 75) == 30.0
    assert percentile(values, 90) == pytest.approx(36.0)


def test_percentile_n100_exact():
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 50) == 50.5
    assert percentile(values, 95) == pytest.approx(95.05)
    assert percentile(values, 99) == pytest.approx(99.01)
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 100.0


def test_percentile_out_of_range_q_clamps_to_extremes():
    values = [3.0, 4.0, 5.0]
    assert percentile(values, -10) == 3.0
    assert percentile(values, 250) == 5.0


def test_percentile_nan_q_rejected():
    with pytest.raises(ValueError, match="q is NaN"):
        percentile([1.0, 2.0], float("nan"))


def test_percentile_nan_value_rejected():
    with pytest.raises(ValueError, match="contains NaN"):
        percentile([1.0, float("nan"), 3.0], 50)
    with pytest.raises(ValueError, match="contains NaN"):
        percentile([float("nan")], 50)


def test_percentile_unsorted_input_rejected():
    with pytest.raises(ValueError, match="not sorted"):
        percentile([2.0, 1.0, 3.0], 50)


def test_percentile_allows_duplicates():
    assert percentile([1.0, 1.0, 1.0], 73) == 1.0
    assert percentile([1.0, 1.0, 2.0], 50) == 1.0


def test_cumulative():
    assert cumulative([1, 2, 3]) == [1, 3, 6]
    assert cumulative([]) == []


class TestTopK:
    def test_ranking(self):
        top = TopK(2)
        top.add("a", 5)
        top.add("b", 10)
        top.add("c", 1)
        assert top.top() == [("b", 10), ("a", 5)]

    def test_total_and_count(self):
        top = TopK(3)
        top.add("x")
        top.add("x", 2)
        assert top.total() == 3
        assert top.count("x") == 3
        assert top.count("missing") == 0

    def test_update_and_len(self):
        top = TopK(5)
        top.update({"a": 1, "b": 2})
        assert len(top) == 2


class TestCounter2D:
    def test_cells_and_totals(self):
        matrix = Counter2D()
        matrix.add("ca1", "log1", 3)
        matrix.add("ca1", "log2", 1)
        matrix.add("ca2", "log1", 2)
        assert matrix.get("ca1", "log1") == 3
        assert matrix.get("ca2", "log2") == 0
        assert matrix.row_total("ca1") == 4
        assert matrix.col_total("log1") == 5
        assert matrix.total() == 6

    def test_rows_cols_sorted_by_total(self):
        matrix = Counter2D()
        matrix.add("small", "x", 1)
        matrix.add("big", "x", 10)
        assert matrix.rows() == ["big", "small"]

    def test_density(self):
        matrix = Counter2D()
        matrix.add("a", "x")
        matrix.add("b", "y")
        # 2 rows x 2 cols, 2 non-zero cells.
        assert matrix.density() == 0.5

    def test_density_empty(self):
        assert Counter2D().density() == 0.0

    def test_row_shares(self):
        matrix = Counter2D()
        matrix.add("ca", "log1", 3)
        matrix.add("ca", "log2", 1)
        shares = matrix.row_shares("ca")
        assert shares["log1"] == 0.75
        assert shares["log2"] == 0.25

    def test_row_shares_empty_row(self):
        assert Counter2D().row_shares("nope") == {}


def test_gini_equal_distribution_is_zero():
    assert abs(gini([5, 5, 5, 5])) < 1e-9


def test_gini_concentrated_is_high():
    assert gini([0, 0, 0, 100]) > 0.7


def test_gini_all_zero():
    assert gini([0, 0, 0]) == 0.0


def test_gini_empty_raises():
    with pytest.raises(ValueError):
        gini([])


def test_gini_monotone_in_concentration():
    assert gini([1, 1, 1, 7]) > gini([2, 2, 3, 3])
