"""Tests for text table/chart rendering."""

import pytest

from repro.util.tables import Table, ascii_heatmap, ascii_line_chart


class TestTable:
    def test_alignment(self):
        table = Table(["name", "count"])
        table.add_row("a", 1)
        table.add_row("long-name", 12345)
        rendered = table.render()
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line.rstrip()) for line in lines[:2]}) == 1

    def test_wrong_cell_count_raises(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_str(self):
        table = Table(["x"])
        table.add_row("v")
        assert "v" in str(table)


class TestLineChart:
    def test_empty(self):
        assert "empty" in ascii_line_chart({})

    def test_contains_legend_and_glyphs(self):
        chart = ascii_line_chart({"up": [0, 1, 2, 3], "flat": [1, 1, 1, 1]})
        assert "*=up" in chart
        assert "+=flat" in chart

    def test_single_point_series(self):
        chart = ascii_line_chart({"one": [5.0]})
        assert "*" in chart

    def test_all_zero_series(self):
        chart = ascii_line_chart({"zero": [0, 0, 0]})
        assert "*" in chart  # drawn on the baseline

    def test_x_labels(self):
        chart = ascii_line_chart({"s": [1, 2]}, x_labels=("2017-05", "2018-05"))
        assert "2017-05" in chart and "2018-05" in chart


class TestHeatmap:
    def test_empty_cells_render_dots(self):
        heat = ascii_heatmap(["r1"], ["c1", "c2"], {("r1", "c1"): 5.0})
        assert "." in heat

    def test_max_shade_for_peak(self):
        heat = ascii_heatmap(["r"], ["c"], {("r", "c"): 10.0})
        assert "@" in heat

    def test_row_truncation(self):
        rows = [f"row{i}" for i in range(40)]
        heat = ascii_heatmap(rows, ["c"], {}, max_rows=5)
        assert "row39" not in heat
