"""Tests for simulated-time helpers."""

from datetime import date, timezone

from repro.util import timeutil


def test_utc_datetime_is_aware():
    moment = timeutil.utc_datetime(2018, 4, 18, 12, 30)
    assert moment.tzinfo is timezone.utc
    assert moment.hour == 12


def test_parse_date():
    assert timeutil.parse_date("2018-04-18") == date(2018, 4, 18)


def test_parse_utc_naive_gets_utc():
    parsed = timeutil.parse_utc("2018-04-12 14:16:59")
    assert parsed.tzinfo is timezone.utc
    assert parsed.second == 59


def test_date_range_inclusive():
    days = list(timeutil.date_range(date(2018, 1, 1), date(2018, 1, 3)))
    assert days == [date(2018, 1, 1), date(2018, 1, 2), date(2018, 1, 3)]


def test_date_range_single_day():
    days = list(timeutil.date_range(date(2018, 1, 1), date(2018, 1, 1)))
    assert days == [date(2018, 1, 1)]


def test_date_range_empty_when_reversed():
    assert list(timeutil.date_range(date(2018, 1, 2), date(2018, 1, 1))) == []


def test_day_index():
    assert timeutil.day_index(date(2018, 1, 11), date(2018, 1, 1)) == 10
    assert timeutil.day_index(date(2017, 12, 31), date(2018, 1, 1)) == -1


def test_month_key():
    assert timeutil.month_key(date(2018, 4, 26)) == "2018-04"


def test_timestamp_ms_roundtrip():
    moment = timeutil.utc_datetime(2018, 4, 12, 14, 16, 59)
    assert timeutil.from_timestamp_ms(timeutil.timestamp_ms(moment)) == moment


def test_start_of_day():
    start = timeutil.start_of_day(date(2018, 4, 12))
    assert (start.hour, start.minute, start.second) == (0, 0, 0)
    assert start.tzinfo is timezone.utc


def test_paper_window_constants_are_ordered():
    assert timeutil.PASSIVE_START < timeutil.PASSIVE_END
    assert timeutil.HONEYPOT_START < timeutil.HONEYPOT_END
    assert timeutil.LOG_HARVEST_START < timeutil.LOG_SNAPSHOT_DATE


def test_day_of():
    moment = timeutil.utc_datetime(2018, 4, 12, 23, 59)
    assert timeutil.day_of(moment) == date(2018, 4, 12)
