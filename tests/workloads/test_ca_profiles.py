"""Tests for the Figure 1 CA logging workload."""

from datetime import date

import pytest

from repro.ct.sct import SctEntryType
from repro.workloads.ca_profiles import (
    CaLoggingWorkload,
    PAPER_CA_PROFILES,
)

TINY_SCALE = 1.0 / 2_000_000.0


@pytest.fixture(scope="module")
def result():
    return CaLoggingWorkload(
        scale=1 / 600_000, end=date(2018, 4, 30), seed=11
    ).run()


def test_profiles_cover_the_paper_cast():
    names = {profile.name for profile in PAPER_CA_PROFILES}
    assert {"Let's Encrypt", "DigiCert", "Comodo", "GlobalSign",
            "StartCom", "Symantec"} <= names


def test_rate_on_respects_phases():
    le = next(p for p in PAPER_CA_PROFILES if p.name == "Let's Encrypt")
    assert le.rate_on(date(2018, 2, 1)) == 0.0
    assert le.rate_on(date(2018, 4, 1)) >= 2_000_000


def test_log_choice_weights_sum_to_one():
    for profile in PAPER_CA_PROFILES:
        total = sum(weight for _, weight in profile.log_choices)
        assert abs(total - 1.0) < 1e-6, profile.name


def test_workload_is_deterministic():
    a = CaLoggingWorkload(scale=TINY_SCALE, end=date(2018, 4, 30), seed=3).run()
    b = CaLoggingWorkload(scale=TINY_SCALE, end=date(2018, 4, 30), seed=3).run()
    assert len(a.issued) == len(b.issued)
    assert [p.final_certificate.serial for p in a.issued] == [
        p.final_certificate.serial for p in b.issued
    ]


def test_entries_are_precertificates(result):
    for log in result.logs.values():
        for entry in log.entries[:20]:
            assert entry.entry_type is SctEntryType.PRECERT_ENTRY


def test_issued_certs_have_embedded_scts(result):
    assert result.issued
    for pair in result.issued[:50]:
        assert pair.final_certificate.has_embedded_scts


def test_no_submissions_to_not_yet_included_logs(result):
    for log in result.logs.values():
        if log.chrome_inclusion is None:
            assert log.size == 0, log.name
            continue
        for entry in log.entries:
            assert entry.submitted_at.date() >= log.chrome_inclusion, log.name


def test_lets_encrypt_starts_only_in_march_2018(result):
    le_dates = [
        entry.submitted_at.date()
        for log in result.logs.values()
        for entry in log.entries
        if entry.certificate.issuer_org == "Let's Encrypt"
    ]
    assert le_dates
    assert min(le_dates) >= date(2018, 3, 8)


def test_nimbus_capacity_scales_with_workload(result):
    nimbus = result.logs["Cloudflare Nimbus2018 Log"]
    assert nimbus.capacity_per_day is not None
    assert nimbus.was_overloaded()


def test_weight_is_inverse_scale(result):
    assert result.weight == pytest.approx(600_000)
