"""Tests for the TLS client population."""

from datetime import date

import pytest

from repro.workloads.clients import (
    ClientPopulation,
    ClientProfile,
    DEFAULT_CLIENT_MIX,
)


def test_default_mix_sums_to_one():
    assert sum(p.share for p in DEFAULT_CLIENT_MIX) == pytest.approx(1.0)


def test_support_share_matches_paper():
    population = ClientPopulation()
    assert population.support_share() == pytest.approx(0.6676, abs=0.005)


def test_sampled_support_converges():
    population = ClientPopulation(seed=5)
    flags = population.sample_support(20_000)
    assert sum(flags) / len(flags) == pytest.approx(0.668, abs=0.02)


def test_enforcing_share_before_and_after_deadline():
    population = ClientPopulation()
    assert population.enforcing_share(date(2018, 4, 17)) == 0.0
    after = population.enforcing_share(date(2018, 4, 18))
    # Chrome desktop + mobile enforce from the deadline.
    assert after == pytest.approx(0.625, abs=0.01)


def test_invalid_mix_rejected():
    with pytest.raises(ValueError):
        ClientPopulation([ClientProfile("only", 0.5, True)])


def test_draw_returns_profiles_from_mix():
    population = ClientPopulation(seed=1)
    names = {population.draw().name for _ in range(2_000)}
    assert "chrome-desktop" in names
    assert "safari" in names


def test_profile_enforcing_on():
    chrome = DEFAULT_CLIENT_MIX[0]
    assert not chrome.enforcing_on(date(2018, 1, 1))
    assert chrome.enforcing_on(date(2018, 5, 1))
    safari = next(p for p in DEFAULT_CLIENT_MIX if p.name == "safari")
    assert not safari.enforcing_on(date(2019, 1, 1))
