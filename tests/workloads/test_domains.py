"""Tests for the domain corpus generator."""

import pytest

from repro.core import leakage
from repro.workloads.domains import (
    DomainWorkload,
    SUFFIX_SIGNATURE_LABELS,
    TABLE2_LABEL_COUNTS,
    TAIL_LABEL_COUNTS,
)


@pytest.fixture(scope="module")
def corpus():
    return DomainWorkload(scale=1 / 10_000, seed=12).build()


@pytest.fixture(scope="module")
def stats(corpus):
    return leakage.analyze_names(corpus.ct_fqdns, corpus.psl)


def test_tail_labels_below_construction_threshold():
    floor = min(count for _, count in TABLE2_LABEL_COUNTS)
    for label, count in TAIL_LABEL_COUNTS:
        assert count < 100_000, label
        assert count < floor


def test_registrable_domains_scale(corpus):
    assert 15_000 <= len(corpus.registrable_domains) <= 25_000


def test_domain_suffix_consistent(corpus):
    for domain in corpus.registrable_domains[:200]:
        suffix = corpus.domain_suffix[domain]
        assert domain.endswith("." + suffix)


def test_table2_ranking_reproduced(stats):
    # At 1:10,000 scale several Table 2 counts collapse to ties
    # (dev=remote=25, blog=api=23 ...), so assert set equality plus
    # rank order wherever the scaled counts are distinct.
    expected = [label for label, _ in TABLE2_LABEL_COUNTS]
    got = stats.top_labels(20)
    assert {label for label, _ in got} == set(expected)
    counts = [count for _, count in got]
    assert counts == sorted(counts, reverse=True)
    # The head of the table has no ties at this scale.
    assert [label for label, _ in got[:9]][:6] == expected[:6]


def test_table2_exact_ranking_at_reference_scale():
    from repro.workloads.domains import DomainWorkload as DW

    corpus = DW(scale=1 / 1_000, seed=12).build()
    stats = leakage.analyze_names(corpus.ct_fqdns, corpus.psl)
    assert [label for label, _ in stats.top_labels(20)] == [
        label for label, _ in TABLE2_LABEL_COUNTS
    ]


def test_www_dominates(stats):
    assert stats.label_share("www") > 0.5


def test_top10_share_near_99(stats):
    assert stats.top_k_share(10) > 0.95


def test_signature_labels_dominate_their_suffixes(stats):
    tops = stats.top_label_per_suffix()
    for suffix, label in SUFFIX_SIGNATURE_LABELS:
        assert tops.get(suffix) == label, (suffix, tops.get(suffix))


def test_corpus_contains_invalid_names(corpus):
    from repro.dnscore.name import is_valid_fqdn

    invalid = [n for n in corpus.ct_fqdns
               if not n.startswith("*.") and not is_valid_fqdn(n)]
    assert invalid  # the validator filter has something to do


def test_corpus_contains_wildcards(corpus):
    assert any(name.startswith("*.") for name in corpus.ct_fqdns)


def test_determinism():
    a = DomainWorkload(scale=1 / 50_000, seed=4).build()
    b = DomainWorkload(scale=1 / 50_000, seed=4).build()
    assert a.ct_fqdns == b.ct_fqdns


def test_emitted_counts_match_targets(corpus):
    for label, real in TABLE2_LABEL_COUNTS:
        expected = max(1, int(real / 10_000))
        assert corpus.emitted_label_counts[label] == expected


def test_domains_in_suffix(corpus):
    tech = corpus.domains_in_suffix("tech")
    assert tech
    assert all(domain.endswith(".tech") for domain in tech)
