"""Unit tests for the load-storm planner and report math (no sockets)."""

import pickle

import pytest

from repro.ct.log import CTLog
from repro.ct.loglist import log_key
from repro.util.timeutil import utc_datetime
from repro.workloads.loadgen import (
    READ_OPS,
    ClientResult,
    LoadStormConfig,
    LoadStormReport,
    OpResult,
    plan_storm,
    run_storm,
)
from repro.x509.ca import CertificateAuthority, IssuanceRequest

NOW = utc_datetime(2018, 5, 1, 10, 0)


def _seeded_log(entries=10):
    log = CTLog(
        name="Plan Log", operator="T", key=log_key("Plan Log", 256)
    )
    ca = CertificateAuthority("Plan CA", key_bits=256)
    for i in range(entries):
        ca.issue(IssuanceRequest((f"p{i}.example",)), [log], NOW)
    return log


def test_plans_are_deterministic_and_seed_sensitive():
    log = _seeded_log()
    config = LoadStormConfig(seed=5, browsers=2, monitors=1, submitters=1)
    assert plan_storm(config, log) == plan_storm(config, log)
    other = LoadStormConfig(seed=6, browsers=2, monitors=1, submitters=1)
    assert plan_storm(config, log) != plan_storm(other, log)


def test_plan_population_matches_config():
    log = _seeded_log()
    config = LoadStormConfig(
        seed=3,
        browsers=3,
        monitors=2,
        submitters=2,
        audits_per_browser=4,
        pages_per_monitor=3,
        submissions_per_submitter=5,
    )
    plans = plan_storm(config, log)
    assert [plan.kind for plan in plans].count("browser") == 3
    assert [plan.kind for plan in plans].count("monitor") == 2
    assert [plan.kind for plan in plans].count("submitter") == 2
    assert sum(plan.submissions for plan in plans) == 10
    # Browsers: one get-sth plus the audits, all reads.
    browser = next(plan for plan in plans if plan.kind == "browser")
    assert browser.reads == len(browser.ops) == 5
    # Monitors end with a consistency check against the seed head.
    monitor = next(plan for plan in plans if plan.kind == "monitor")
    assert monitor.ops[-1].kind == "get_sth_consistency"
    assert monitor.ops[-1].second == log.size
    # Submitters carry real poisoned precertificates in wire form and
    # end with one await_inclusion op covering every submitted leaf.
    submitter = next(plan for plan in plans if plan.kind == "submitter")
    assert [op.kind for op in submitter.ops] == ["add_pre_chain"] * 5 + [
        "await_inclusion"
    ]
    assert all(
        op.chain and op.issuer_key_hash
        for op in submitter.ops
        if op.kind == "add_pre_chain"
    )
    assert submitter.awaited_leaves == 5
    assert len(submitter.ops[-1].leaves) == 5
    assert submitter.submissions == 5  # the await op is not a submission
    assert submitter.reads == 0  # ...and not a read either


def test_await_inclusion_can_be_disabled():
    log = _seeded_log()
    config = LoadStormConfig(
        seed=3, browsers=0, monitors=0, submitters=2,
        submissions_per_submitter=4, await_inclusion=False,
    )
    for plan in plan_storm(config, log):
        assert all(op.kind == "add_pre_chain" for op in plan.ops)
        assert plan.awaited_leaves == 0


def test_monitor_pages_pinned_to_seed_tree_size():
    """TOCTOU guard: planned reads never reach past the seeded tree.

    Submitter clients grow the log mid-storm, so a monitor page
    planned as ``cursor + page_size - 1`` could land beyond the seed
    size and return entries the verification STH does not cover.  The
    planner must clamp every page to the seed window and pin its
    ``tree_size`` so execution can reject any over-answer.
    """
    log = _seeded_log(entries=10)
    config = LoadStormConfig(
        seed=9,
        browsers=0,
        monitors=3,
        submitters=2,
        pages_per_monitor=8,
        page_size=7,  # guarantees cursor + page_size overruns size 10
        submissions_per_submitter=4,
    )
    pages = [
        op
        for plan in plan_storm(config, log)
        for op in plan.ops
        if op.kind == "get_entries"
    ]
    assert pages
    assert any(op.start + config.page_size - 1 > 9 for op in pages)
    for op in pages:
        assert 0 <= op.start <= op.end <= 9  # clamped to the seed window
        assert op.tree_size == 10  # pinned for execution-time checks


def test_plans_are_picklable_for_process_executor():
    log = _seeded_log(entries=4)
    config = LoadStormConfig(
        seed=1, browsers=1, monitors=1, submitters=1,
        audits_per_browser=1, pages_per_monitor=1,
        submissions_per_submitter=1,
    )
    plans = plan_storm(config, log)
    assert pickle.loads(pickle.dumps(plans)) == plans


def test_plan_storm_rejects_empty_log():
    log = CTLog(name="Empty", operator="T", key=log_key("Empty", 256))
    with pytest.raises(ValueError, match="seeded"):
        plan_storm(LoadStormConfig(), log)


def test_run_storm_rejects_unknown_executor():
    with pytest.raises(ValueError, match="executor"):
        run_storm([], "http://127.0.0.1:1", executor="fibers")


def _report(ops_by_client):
    return LoadStormReport(
        wall_seconds=2.0,
        executor="thread",
        workers=4,
        clients=len(ops_by_client),
        results=[
            ClientResult("browser", f"c{i}", ops=list(ops))
            for i, ops in enumerate(ops_by_client)
        ],
    )


def test_report_percentiles_and_rates():
    reads = [
        OpResult("get_sth", 200, seconds / 100, True)
        for seconds in range(1, 101)
    ]
    submissions = [OpResult("add_pre_chain", 200, 0.01, True)] * 10
    rejected = [OpResult("add_pre_chain", 429, 0.01, None)] * 3
    failed = [OpResult("get_entries", 400, 0.01, None)]
    report = _report([reads, submissions + rejected + failed])

    assert report.reads_ok == 100
    assert report.read_p50 == pytest.approx(0.505, abs=0.01)
    assert report.read_p99 == pytest.approx(1.0, abs=0.02)
    assert report.submissions_ok == 10
    assert report.submissions_rejected == 3
    assert report.submissions_per_sec == pytest.approx(5.0)
    assert report.reads_per_sec == pytest.approx(50.0)
    assert report.status_counts() == {200: 110, 400: 1, 429: 3}
    assert report.transport_errors == 0


def test_report_flags_verification_failures_only_on_success():
    ops = [
        OpResult("get_proof_by_hash", 200, 0.01, False),  # lying server
        OpResult("get_proof_by_hash", 404, 0.01, None),  # clean error
        OpResult("get_sth", -1, 0.01, None),  # transport
    ]
    report = _report([ops])
    assert report.verification_failures == 1
    assert report.transport_errors == 1


def test_report_to_dict_round_trips_schema():
    report = _report([[OpResult("get_sth", 200, 0.5, True)]])
    data = report.to_dict()
    assert data["version"] == 2
    assert data["clients"] == 1
    assert data["reads_ok"] == 1
    assert data["status_counts"] == {"200": 1}
    for key in (
        "sct_p50_s", "sct_p99_s", "merge_lag_max_s", "merge_lag_mean_s",
        "inclusions_verified",
    ):
        assert key in data
    assert set(READ_OPS) == {
        "get_sth", "get_entries", "get_proof_by_hash", "get_sth_consistency"
    }


def test_report_separates_sct_latency_from_merge_lag():
    submissions = [
        OpResult("add_pre_chain", 200, 0.002, True),
        OpResult("add_pre_chain", 200, 0.004, True),
        OpResult("add_pre_chain", 429, 9.0, None),  # rejected: excluded
    ]
    awaits = [
        OpResult("await_inclusion", 200, 0.050, True),
        OpResult("await_inclusion", 200, 0.030, True),
        OpResult("await_inclusion", 200, 10.0, False),  # timed out
    ]
    report = _report([submissions, awaits])
    assert report.sct_latencies == [0.002, 0.004]
    assert report.sct_p99 <= 0.004
    # Merge lag comes from the await ops — including the timeout (its
    # duration is real waiting), but it fails inclusion verification.
    assert report.merge_lag_max_s == pytest.approx(10.0)
    assert report.merge_lag_mean_s == pytest.approx((0.05 + 0.03 + 10.0) / 3)
    assert report.inclusions_verified == 2
    assert report.verification_failures == 1
    # The await ops never leak into the read-latency percentiles.
    assert report.read_latencies == []


def test_report_render_mentions_the_gated_numbers():
    report = _report([[OpResult("add_pre_chain", 200, 0.01, True)]])
    rendered = report.render()
    assert "submissions" in rendered
    assert "p99" in rendered
    assert "thread pool" in rendered
    assert "sct latency" in rendered
    assert "merge lag" not in rendered  # no await ops ran


def test_report_render_includes_merge_lag_when_awaited():
    report = _report(
        [[
            OpResult("add_pre_chain", 200, 0.01, True),
            OpResult("await_inclusion", 200, 0.2, True),
        ]]
    )
    rendered = report.render()
    assert "merge lag" in rendered
    assert "1 submitters fully included" in rendered


# -- monitor swarm planning and storm gossip (no sockets) -------------------


def test_swarm_subscriptions_deterministic_and_sorted():
    from repro.workloads.loadgen import (
        MonitorSwarmConfig,
        plan_swarm_subscriptions,
    )

    pool = [f"d{i}.example" for i in range(20)]
    config = MonitorSwarmConfig(seed=5, monitors=10, domains_per_monitor=2)
    subs = plan_swarm_subscriptions(config, pool)
    assert subs == plan_swarm_subscriptions(config, list(reversed(pool)))
    assert len(subs) == 10
    assert [name for name, _ in subs] == [f"lw-monitor-{m}" for m in range(10)]
    for _, domains in subs:
        assert len(domains) == 2
        assert list(domains) == sorted(domains)
        assert set(domains) <= set(pool)
    other = MonitorSwarmConfig(seed=6, monitors=10, domains_per_monitor=2)
    assert plan_swarm_subscriptions(other, pool) != subs


def test_swarm_subscriptions_reject_empty_pool():
    from repro.workloads.loadgen import (
        MonitorSwarmConfig,
        plan_swarm_subscriptions,
    )

    with pytest.raises(ValueError):
        plan_swarm_subscriptions(MonitorSwarmConfig(), [])


def test_monitor_swarm_validates_inputs():
    from repro.workloads.loadgen import MonitorSwarm

    with pytest.raises(ValueError):
        MonitorSwarm("http://x", "L", [], mode="lightweight")
    with pytest.raises(ValueError):
        MonitorSwarm(
            "http://x", "L", [("m", ("d.example",))], mode="firehose"
        )


def test_gossip_storm_sths_skips_failed_and_foreign_ops():
    import base64

    from repro.ct.auditor import GossipPool
    from repro.workloads.loadgen import gossip_storm_sths

    log = _seeded_log(entries=4)
    sth = log.get_sth(NOW)
    body = {
        "tree_size": sth.tree_size,
        "timestamp": sth.timestamp_ms,
        "sha256_root_hash": base64.b64encode(sth.root_hash).decode(),
        "tree_head_signature": base64.b64encode(sth.signature).decode(),
    }
    results = [
        ClientResult(
            kind="browser", name="b-0",
            ops=[
                OpResult("get_sth", 200, 0.001, True, sth=body),
                OpResult("get_sth", 500, 0.001, None),  # failed: skipped
                OpResult("get_entries", 200, 0.001, True),  # not an STH
            ],
        ),
        ClientResult(
            kind="monitor", name="m-0",
            ops=[OpResult("get_sth", 200, 0.001, True, sth=body)],
        ),
    ]
    report = LoadStormReport(
        wall_seconds=0.01, executor="serial", workers=1,
        clients=2, results=results,
    )
    pool = GossipPool()
    findings = gossip_storm_sths(report, pool, log.name, now=NOW)
    assert findings == []
    assert pool.sths_gossiped == 2
    assert pool.clean
