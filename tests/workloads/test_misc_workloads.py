"""Tests for wordlists, Sonar, hosting, incidents, and phishing workloads."""

import pytest

from repro.core import leakage
from repro.workloads.domains import DomainWorkload
from repro.workloads.hosting import HostingWorkload
from repro.workloads.incidents import MisissuanceWorkload
from repro.workloads.phishing import PhishingWorkload, SERVICES
from repro.workloads.sonar import SonarWorkload
from repro.workloads.wordlists import (
    DNSRECON_CT_OVERLAP,
    DNSRECON_SIZE,
    SUBBRUTE_CT_OVERLAP,
    SUBBRUTE_SIZE,
    dnsrecon_wordlist,
    subbrute_wordlist,
)


@pytest.fixture(scope="module")
def corpus():
    return DomainWorkload(scale=1 / 20_000, seed=8).build()


@pytest.fixture(scope="module")
def stats(corpus):
    return leakage.analyze_names(corpus.ct_fqdns, corpus.psl)


class TestWordlists:
    def test_subbrute_size_and_overlap(self, stats):
        words = subbrute_wordlist(stats.label_counts)
        assert len(words) == SUBBRUTE_SIZE
        assert len(leakage.wordlist_overlap(words, stats)) == SUBBRUTE_CT_OVERLAP

    def test_dnsrecon_size_and_overlap(self, stats):
        words = dnsrecon_wordlist(stats.label_counts)
        assert len(words) == DNSRECON_SIZE
        assert len(leakage.wordlist_overlap(words, stats)) == DNSRECON_CT_OVERLAP

    def test_deterministic(self, stats):
        assert subbrute_wordlist(stats.label_counts) == subbrute_wordlist(stats.label_counts)


class TestSonar:
    def test_domain_overlap_calibration(self, corpus):
        sonar = SonarWorkload(seed=2).build(corpus)
        known = sum(1 for d in corpus.registrable_domains if sonar.knows(d))
        assert abs(known / len(corpus.registrable_domains) - 0.82) < 0.03

    def test_known_share_of_existing(self, corpus):
        existing = [f"www.{d}" for d in corpus.registrable_domains[:3000]]
        sonar = SonarWorkload(seed=2).build(corpus, existing)
        known = len(sonar.known_among(existing))
        assert abs(known / len(existing) - 0.059) < 0.02


class TestHosting:
    def test_population_shape(self):
        population = HostingWorkload(scale=1 / 100_000, seed=1).build()
        assert population.endpoints
        assert population.domains
        # Every domain resolves within the population's universe.
        resolver = population.resolver()
        from repro.dnscore.records import RecordType
        from repro.util.timeutil import utc_datetime

        result = resolver.resolve(
            population.domains[0], RecordType.A, now=utc_datetime(2018, 5, 18)
        )
        assert result.addresses


class TestIncidents:
    def test_injected_counts(self):
        corpus = MisissuanceWorkload(healthy_certificates=20, seed=3).build()
        bugs = list(corpus.injected.values())
        assert len(bugs) == 16
        by_ca = {}
        for (ca, _), bug in corpus.injected.items():
            by_ca.setdefault(ca, 0)
            by_ca[ca] += 1
        assert by_ca == {
            "TeliaSonera": 1, "GlobalSign": 12, "D-Trust": 2, "NetLock": 1,
        }


class TestPhishing:
    def test_counts_scale(self):
        corpus = PhishingWorkload(scale=1 / 1000, seed=4).build()
        assert corpus.phishing_count("Apple") == 63
        assert corpus.phishing_count("PayPal") == 58

    def test_government_examples_present(self):
        corpus = PhishingWorkload(seed=4).build()
        assert "ato.gov.au.eng-atorefund.com" in corpus.government_names

    def test_tricky_benign_included(self):
        corpus = PhishingWorkload(seed=4).build()
        assert "snapple.com" in corpus.benign_names

    def test_all_services_generated(self):
        corpus = PhishingWorkload(seed=4).build()
        for service in SERVICES:
            assert corpus.phishing_count(service.name) >= 3
