"""Tests for the uplink traffic workload."""

from datetime import date

import pytest

from repro.workloads.traffic import (
    DEFAULT_SITE_GROUPS,
    FACEBOOK_PEAK_DAYS,
    TOTAL_REAL_CONNECTIONS,
    UplinkTrafficWorkload,
    _apportion,
)
from repro.util.rng import SeededRng


@pytest.fixture(scope="module")
def workload():
    return UplinkTrafficWorkload(
        connections_per_day=200,
        start=date(2017, 6, 1),
        end=date(2017, 6, 14),
        seed=21,
    )


def test_group_shares_sum_to_one():
    assert sum(g.share for g in DEFAULT_SITE_GROUPS) == pytest.approx(1.0)


def test_cert_share_target():
    cert_share = sum(g.share for g in DEFAULT_SITE_GROUPS if g.cert_logs)
    assert cert_share == pytest.approx(0.2140, abs=1e-3)


def test_tls_share_target():
    tls_share = sum(
        g.share for g in DEFAULT_SITE_GROUPS if g.tls_logs and not g.cert_logs
    )
    assert tls_share == pytest.approx(0.1121, abs=1e-3)


def test_day_volume(workload):
    day_connections = list(workload.connections_for_day(date(2017, 6, 3)))
    # Each rare group may add one scheduled record on top.
    assert 200 <= len(day_connections) <= 200 + len(workload._rare_runtimes)


def test_weights_reconstruct_real_volume(workload):
    total = sum(c.weight for c in workload.stream())
    days = 14
    expected = TOTAL_REAL_CONNECTIONS / 393 * days
    assert abs(total - expected) / expected < 0.05


def test_connections_have_certificates(workload):
    for connection in workload.connections_for_day(date(2017, 6, 5)):
        assert connection.certificate is not None
        assert connection.time.date() == date(2017, 6, 5)


def test_peak_day_shifts_mix():
    workload = UplinkTrafficWorkload(
        connections_per_day=400,
        start=FACEBOOK_PEAK_DAYS[0],
        end=FACEBOOK_PEAK_DAYS[0],
        seed=5,
    )
    day = list(workload.connections_for_day(FACEBOOK_PEAK_DAYS[0]))
    facebook = sum(1 for c in day if c.server_name == "graph.facebook.com")
    assert facebook / len(day) > 0.25


def test_stream_is_deterministic():
    kwargs = dict(connections_per_day=100, start=date(2017, 7, 1),
                  end=date(2017, 7, 3), seed=9)
    a = [c.server_name for c in UplinkTrafficWorkload(**kwargs).stream()]
    b = [c.server_name for c in UplinkTrafficWorkload(**kwargs).stream()]
    assert a == b


class TestApportion:
    def test_counts_sum_to_total(self):
        rng = SeededRng(1)
        counts = _apportion([0.5, 0.3, 0.2], 100, rng)
        assert sum(counts) == 100

    def test_large_shares_proportional(self):
        rng = SeededRng(2)
        counts = _apportion([0.75, 0.25], 1000, rng)
        assert abs(counts[0] - 750) <= 1

    def test_tiny_share_never_negative(self):
        rng = SeededRng(3)
        counts = _apportion([0.999, 0.001], 10, rng)
        assert all(count >= 0 for count in counts)
        assert sum(counts) == 10


def test_apportion_property_sum_preserved():
    """Apportionment always hands out exactly the requested total."""
    from hypothesis import given, settings, strategies as st

    @given(
        shares=st.lists(st.floats(0.001, 1.0), min_size=1, max_size=12),
        total=st.integers(1, 2_000),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def check(shares, total, seed):
        normalized = [s / sum(shares) for s in shares]
        counts = _apportion(normalized, total, SeededRng(seed))
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)

    check()
