"""Tests for the CA issuance pipeline, including the bug injections."""

import pytest

from repro.ct.sct import SCT_LIST_EXTENSION_OID, SignedCertificateTimestamp
from repro.ct.verification import validate_embedded_scts
from repro.x509.ca import CertificateAuthority, IssuanceBug, IssuanceRequest
from repro.x509.certificate import SanType


def log_maps(logs):
    return (
        {log.log_id: log.key for log in logs.values()},
        {log.log_id: log.name for log in logs.values()},
    )


def test_issue_produces_poisoned_precert(issued_pair):
    assert issued_pair.precertificate.is_precertificate
    assert not issued_pair.final_certificate.is_precertificate


def test_final_cert_has_embedded_scts(issued_pair):
    assert issued_pair.final_certificate.has_embedded_scts
    assert len(issued_pair.scts) == 2


def test_embedded_sct_list_decodes_to_issued_scts(issued_pair):
    ext = issued_pair.final_certificate.get_extension(SCT_LIST_EXTENSION_OID)
    decoded = SignedCertificateTimestamp.decode_list(ext.value)
    assert [s.log_id for s in decoded] == [s.log_id for s in issued_pair.scts]


def test_embedded_scts_verify(ca, fresh_logs, issued_pair):
    keys, names = log_maps(fresh_logs)
    result = validate_embedded_scts(
        issued_pair.final_certificate, ca.issuer_key_hash, keys, names
    )
    assert result.all_valid
    assert len(result.verdicts) == 2


def test_issue_without_sct_embedding(ca, now):
    pair = ca.issue(IssuanceRequest(("plain.example",), embed_scts=False), [], now)
    assert pair.precertificate is None
    assert not pair.final_certificate.has_embedded_scts
    assert pair.scts == ()


def test_issue_requires_a_name(ca, now):
    with pytest.raises(ValueError):
        ca.issue(IssuanceRequest(()), [], now)


def test_serials_increase(ca, fresh_logs, now):
    logs = [fresh_logs["Google Pilot log"]]
    a = ca.issue(IssuanceRequest(("a.example",)), logs, now)
    b = ca.issue(IssuanceRequest(("b.example",)), logs, now)
    assert b.final_certificate.serial > a.final_certificate.serial


def test_issuer_cns_rotate(fresh_logs, now):
    ca = CertificateAuthority("Multi CN", issuer_cns=("CN A", "CN B"), key_bits=256)
    logs = [fresh_logs["Google Pilot log"]]
    a = ca.issue(IssuanceRequest(("a.example",)), logs, now)
    b = ca.issue(IssuanceRequest(("b.example",)), logs, now)
    assert {a.final_certificate.issuer_cn, b.final_certificate.issuer_cn} == {"CN A", "CN B"}


def test_validation_hook_called_before_logging(fresh_logs, now):
    calls = []
    ca = CertificateAuthority(
        "Hooked CA", validation_hook=lambda names, when: calls.append((tuple(names), when)),
        key_bits=256,
    )
    ca.issue(IssuanceRequest(("hooked.example",)), [fresh_logs["Google Pilot log"]], now)
    assert calls == [(("hooked.example",), now)]


def test_log_final_certificates_flag(fresh_logs, now):
    ca = CertificateAuthority("LE-like", log_final_certificates=True, key_bits=256)
    log = fresh_logs["Google Pilot log"]
    before = log.size
    ca.issue(IssuanceRequest(("final.example",)), [log], now)
    # One precert entry + one final-cert entry.
    assert log.size == before + 2


def test_lifetime_days_respected(ca, now):
    pair = ca.issue(
        IssuanceRequest(("lt.example",), lifetime_days=10, embed_scts=False), [], now
    )
    assert (pair.final_certificate.not_after - pair.final_certificate.not_before).days == 10


class TestBugInjection:
    def test_san_reorder_moves_ips_first(self, ca, fresh_logs, now):
        pair = ca.issue(
            IssuanceRequest(("gs.example",), ip_addresses=("192.0.2.9",)),
            [fresh_logs["Google Pilot log"]],
            now,
            bug=IssuanceBug.SAN_REORDER,
        )
        assert pair.final_certificate.san[0].san_type is SanType.IP
        assert pair.precertificate.san[0].san_type is SanType.DNS

    def test_san_reorder_invalidates_scts(self, ca, fresh_logs, now):
        keys, names = log_maps(fresh_logs)
        pair = ca.issue(
            IssuanceRequest(("gs2.example",), ip_addresses=("192.0.2.9",)),
            [fresh_logs["Google Pilot log"]],
            now,
            bug=IssuanceBug.SAN_REORDER,
        )
        result = validate_embedded_scts(
            pair.final_certificate, ca.issuer_key_hash, keys, names
        )
        assert result.any_invalid

    def test_extension_reorder_invalidates_scts(self, ca, fresh_logs, now):
        keys, names = log_maps(fresh_logs)
        pair = ca.issue(
            IssuanceRequest(("dt.example",)),
            [fresh_logs["Google Pilot log"]],
            now,
            bug=IssuanceBug.EXTENSION_REORDER,
        )
        result = validate_embedded_scts(
            pair.final_certificate, ca.issuer_key_hash, keys, names
        )
        assert result.any_invalid

    def test_san_swap_changes_names_and_issuer(self, ca, fresh_logs, now):
        pair = ca.issue(
            IssuanceRequest(("nl.example",)),
            [fresh_logs["Google Pilot log"]],
            now,
            bug=IssuanceBug.SAN_SWAP,
        )
        assert pair.final_certificate.san != pair.precertificate.san
        assert pair.final_certificate.issuer_cn != pair.precertificate.issuer_cn

    def test_sct_reuse_requires_prior_issuance(self, ca, fresh_logs, now):
        keys, names = log_maps(fresh_logs)
        log = fresh_logs["Google Pilot log"]
        first = ca.issue(IssuanceRequest(("ts.example",)), [log], now)
        reissued = ca.issue(
            IssuanceRequest(("ts.example",)), [log], now, bug=IssuanceBug.SCT_REUSE
        )
        # The re-issued cert embeds the *first* cert's SCT.
        ext = reissued.final_certificate.get_extension(SCT_LIST_EXTENSION_OID)
        embedded = SignedCertificateTimestamp.decode_list(ext.value)
        assert embedded[0].signature == first.scts[0].signature
        result = validate_embedded_scts(
            reissued.final_certificate, ca.issuer_key_hash, keys, names
        )
        assert result.any_invalid

    def test_sct_reuse_without_prior_is_clean(self, ca, fresh_logs, now):
        keys, names = log_maps(fresh_logs)
        pair = ca.issue(
            IssuanceRequest(("fresh.example",)),
            [fresh_logs["Google Pilot log"]],
            now,
            bug=IssuanceBug.SCT_REUSE,
        )
        result = validate_embedded_scts(
            pair.final_certificate, ca.issuer_key_hash, keys, names
        )
        assert result.all_valid  # nothing to reuse yet

    def test_healthy_issue_is_valid_for_all_bug_free_paths(self, ca, fresh_logs, now):
        keys, names = log_maps(fresh_logs)
        pair = ca.issue(
            IssuanceRequest(("clean.example",), ip_addresses=("192.0.2.1",)),
            [fresh_logs["Google Pilot log"]],
            now,
        )
        result = validate_embedded_scts(
            pair.final_certificate, ca.issuer_key_hash, keys, names
        )
        assert result.all_valid
