"""Tests for the certificate model and TBS serialization."""


from repro.util.timeutil import utc_datetime
from repro.x509.certificate import (
    Certificate,
    Extension,
    GeneralName,
    POISON_EXTENSION_OID,
    SCT_LIST_EXTENSION_OID,
    SanType,
    dns_general_names,
)


def make_cert(**overrides):
    fields = dict(
        serial=1,
        issuer_cn="Issuer CN",
        issuer_org="Issuer Org",
        subject_cn="example.org",
        san=dns_general_names(["example.org", "www.example.org"]),
        not_before=utc_datetime(2018, 1, 1),
        not_after=utc_datetime(2018, 4, 1),
    )
    fields.update(overrides)
    return Certificate(**fields)


def test_dns_names_dedup_and_order():
    cert = make_cert(
        san=dns_general_names(["EXAMPLE.org", "www.example.org"])
    )
    assert cert.dns_names() == ["example.org", "www.example.org"]


def test_dns_names_include_cn_first():
    cert = make_cert(subject_cn="cn.example.org", san=dns_general_names(["other.example.org"]))
    assert cert.dns_names()[0] == "cn.example.org"


def test_ip_addresses():
    cert = make_cert(
        san=(
            GeneralName(SanType.DNS, "a.example"),
            GeneralName(SanType.IP, "192.0.2.1"),
        )
    )
    assert cert.ip_addresses() == ["192.0.2.1"]


def test_precertificate_flag():
    cert = make_cert(extensions=(Extension(POISON_EXTENSION_OID, critical=True),))
    assert cert.is_precertificate
    assert not make_cert().is_precertificate


def test_embedded_sct_flag():
    cert = make_cert(extensions=(Extension(SCT_LIST_EXTENSION_OID, b"blob"),))
    assert cert.has_embedded_scts


def test_tbs_changes_with_san_order():
    a = make_cert(san=dns_general_names(["a.example", "b.example"]))
    b = make_cert(san=dns_general_names(["b.example", "a.example"]))
    assert a.tbs_bytes() != b.tbs_bytes()


def test_tbs_changes_with_extension_order():
    e1, e2 = Extension("1.1", b"x"), Extension("2.2", b"y")
    a = make_cert(extensions=(e1, e2))
    b = make_cert(extensions=(e2, e1))
    assert a.tbs_bytes() != b.tbs_bytes()


def test_tbs_exclude_oids_removes_extension_influence():
    base = make_cert()
    poisoned = make_cert(extensions=(Extension(POISON_EXTENSION_OID, critical=True),))
    assert base.tbs_bytes() == poisoned.tbs_bytes(
        exclude_oids=(POISON_EXTENSION_OID,)
    )


def test_tbs_changes_with_serial():
    assert make_cert(serial=1).tbs_bytes() != make_cert(serial=2).tbs_bytes()


def test_tbs_changes_with_validity():
    a = make_cert()
    b = make_cert(not_after=utc_datetime(2018, 5, 1))
    assert a.tbs_bytes() != b.tbs_bytes()


def test_without_extension_preserves_order():
    e1, e2, e3 = Extension("1.1"), Extension("2.2"), Extension("3.3")
    cert = make_cert(extensions=(e1, e2, e3))
    trimmed = cert.without_extension("2.2")
    assert [e.oid for e in trimmed.extensions] == ["1.1", "3.3"]


def test_get_extension():
    ext = Extension("5.5", b"payload")
    cert = make_cert(extensions=(ext,))
    assert cert.get_extension("5.5") is ext
    assert cert.get_extension("9.9") is None


def test_fingerprint_distinguishes_certificates():
    assert make_cert(serial=1).fingerprint() != make_cert(serial=2).fingerprint()


def test_fingerprint_includes_signature():
    a = make_cert(signature=b"sig-a")
    b = make_cert(signature=b"sig-b")
    assert a.fingerprint() != b.fingerprint()


def test_general_name_encoding_distinguishes_types():
    dns = GeneralName(SanType.DNS, "192.0.2.1")
    ip = GeneralName(SanType.IP, "192.0.2.1")
    assert dns.encode() != ip.encode()


def test_extension_encoding_includes_critical_bit():
    assert Extension("1.1", b"x", critical=True).encode() != Extension(
        "1.1", b"x", critical=False
    ).encode()
