"""Tests for CA hierarchies and chain validation."""


import pytest

from repro.util.timeutil import utc_datetime
from repro.x509.ca import IssuanceRequest
from repro.x509.chain import CaHierarchy, build_chain, validate_chain

NOW = utc_datetime(2018, 4, 1)


@pytest.fixture(scope="module")
def hierarchy():
    h = CaHierarchy("BigBrand")
    h.add_intermediate("BigBrand DV CA 1", not_before=utc_datetime(2016, 1, 1))
    h.add_intermediate("BigBrand EV CA 2", not_before=utc_datetime(2017, 1, 1))
    return h


@pytest.fixture()
def leaf(hierarchy, fresh_logs):
    ca = hierarchy.intermediate_for("BigBrand DV CA 1")
    pair = ca.issue(
        IssuanceRequest(("chained.example",)),
        [fresh_logs["Google Pilot log"]],
        NOW,
    )
    return pair.final_certificate


def trusted(hierarchy):
    return {hierarchy.root_certificate.subject_cn: hierarchy.root_key}


def test_intermediates_share_the_brand(hierarchy):
    ca = hierarchy.intermediate_for("BigBrand DV CA 1")
    assert ca.name == "BigBrand"
    assert ca.issuer_cns == ("BigBrand DV CA 1",)


def test_leaf_names_intermediate_as_issuer(leaf):
    assert leaf.issuer_cn == "BigBrand DV CA 1"
    assert leaf.issuer_org == "BigBrand"


def test_chain_structure(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    assert [c.subject_cn for c in chain] == [
        "chained.example", "BigBrand DV CA 1", "BigBrand Root CA",
    ]


def test_valid_chain_validates(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    result = validate_chain(
        chain, trusted(hierarchy), NOW, known_keys=hierarchy.keys_by_subject()
    )
    assert result.valid, result.reasons


def test_untrusted_anchor_rejected(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    result = validate_chain(chain, {}, NOW, known_keys=hierarchy.keys_by_subject())
    assert not result.valid
    assert any("not a trusted root" in r for r in result.reasons)


def test_wrong_intermediate_rejected(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    # Swap in the *other* intermediate's certificate.
    wrong = hierarchy.intermediate_certs["BigBrand EV CA 2"]
    tampered = [chain[0], wrong, chain[2]]
    result = validate_chain(
        tampered, trusted(hierarchy), NOW, known_keys=hierarchy.keys_by_subject()
    )
    assert not result.valid


def test_expired_intermediate_rejected(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    result = validate_chain(
        chain, trusted(hierarchy), utc_datetime(2031, 1, 1),
        known_keys=hierarchy.keys_by_subject(),
    )
    assert not result.valid
    assert any("validity window" in r for r in result.reasons)


def test_forged_leaf_signature_rejected(hierarchy, leaf):
    from dataclasses import replace

    forged = replace(leaf, signature=b"\x01" * len(leaf.signature))
    chain = [forged] + build_chain(leaf, hierarchy)[1:]
    result = validate_chain(
        chain, trusted(hierarchy), NOW, known_keys=hierarchy.keys_by_subject()
    )
    assert not result.valid
    assert any("bad signature" in r for r in result.reasons)


def test_key_substitution_rejected(hierarchy, leaf):
    """An attacker supplying their own key for the intermediate CN is
    caught by the key-id binding check."""
    from repro.x509.crypto import KeyPair

    evil_keys = hierarchy.keys_by_subject()
    evil_keys["BigBrand DV CA 1"] = KeyPair.generate("evil", 256)
    chain = build_chain(leaf, hierarchy)
    result = validate_chain(chain, trusted(hierarchy), NOW, known_keys=evil_keys)
    assert not result.valid


def test_missing_intermediate_key(hierarchy, leaf):
    chain = build_chain(leaf, hierarchy)
    result = validate_chain(chain, trusted(hierarchy), NOW, known_keys={})
    assert not result.valid
    assert any("no key known" in r for r in result.reasons)


def test_empty_chain():
    result = validate_chain([], {}, NOW)
    assert not result.valid


def test_duplicate_intermediate_rejected(hierarchy):
    with pytest.raises(ValueError):
        hierarchy.add_intermediate(
            "BigBrand DV CA 1", not_before=utc_datetime(2016, 1, 1)
        )


def test_chain_for_unknown_issuer(hierarchy, fresh_logs):
    from repro.x509.ca import CertificateAuthority

    stranger = CertificateAuthority("Stranger", key_bits=256)
    pair = stranger.issue(
        IssuanceRequest(("s.example",), embed_scts=False), [], NOW
    )
    with pytest.raises(ValueError):
        build_chain(pair.final_certificate, hierarchy)
