"""Tests for the deterministic small-RSA scheme."""

import pytest

from repro.x509.crypto import KeyPair, sha256, sign, verify


@pytest.fixture(scope="module")
def key():
    return KeyPair.generate("unit-test-key", 256)


def test_keygen_deterministic():
    a = KeyPair.generate("seed-a", 256)
    b = KeyPair.generate("seed-a", 256)
    assert a.n == b.n and a.d == b.d and a.key_id == b.key_id


def test_different_seeds_different_keys():
    a = KeyPair.generate("seed-a", 256)
    b = KeyPair.generate("seed-b", 256)
    assert a.n != b.n


def test_modulus_bit_length(key):
    assert key.n.bit_length() == 256


def test_key_id_is_sha256_of_public_bytes(key):
    assert key.key_id == sha256(key.public_bytes())
    assert len(key.key_id) == 32


def test_sign_verify_roundtrip(key):
    message = b"hello ct"
    signature = sign(key, message)
    assert verify(key, message, signature)


def test_verify_rejects_tampered_message(key):
    signature = sign(key, b"original")
    assert not verify(key, b"tampered", signature)


def test_verify_rejects_tampered_signature(key):
    signature = bytearray(sign(key, b"msg"))
    signature[0] ^= 0xFF
    assert not verify(key, b"msg", bytes(signature))


def test_verify_rejects_wrong_length(key):
    assert not verify(key, b"msg", b"\x00" * 5)


def test_verify_rejects_signature_ge_modulus(key):
    width = (key.n.bit_length() + 7) // 8
    too_big = key.n.to_bytes(width, "big")
    assert not verify(key, b"msg", too_big)


def test_cross_key_rejection(key):
    other = KeyPair.generate("another-key", 256)
    signature = sign(key, b"msg")
    assert not verify(other, b"msg", signature)


def test_signature_width_is_fixed(key):
    width = (key.n.bit_length() + 7) // 8
    for message in (b"", b"a", b"x" * 1000):
        assert len(sign(key, message)) == width


def test_empty_message_roundtrip(key):
    signature = sign(key, b"")
    assert verify(key, b"", signature)


def test_default_bits_is_512():
    key = KeyPair.generate("default-bits")
    assert key.n.bit_length() == 512


def test_rsa_identity_holds(key):
    # e*d == 1 mod phi is not directly checkable without p, q — but
    # sign-then-verify over several messages gives the same assurance.
    for i in range(5):
        message = f"message {i}".encode()
        assert verify(key, message, sign(key, message))
