"""Tests for the OCSP responder substrate."""

from datetime import timedelta

import pytest

from repro.x509.ca import CertificateAuthority, IssuanceRequest
from repro.x509.crypto import KeyPair
from repro.x509.ocsp import CertStatus, OcspResponder
from repro.util.timeutil import utc_datetime

NOW = utc_datetime(2018, 4, 1)


@pytest.fixture()
def ca_and_responder():
    ca = CertificateAuthority("OCSP CA", key_bits=256)
    responder = OcspResponder(
        "OCSP CA", KeyPair.generate("ocsp-responder", 256)
    )
    return ca, responder


def issue(ca, name="site.example", logs=(), **kwargs):
    return ca.issue(
        IssuanceRequest((name,), embed_scts=bool(logs), **kwargs),
        list(logs), NOW,
    )


def test_good_response_verifies(ca_and_responder):
    ca, responder = ca_and_responder
    pair = issue(ca)
    response = responder.respond(pair.final_certificate, NOW)
    assert response.status is CertStatus.GOOD
    assert response.verify(responder.key, NOW)


def test_response_carries_scts(ca_and_responder, fresh_logs):
    ca, responder = ca_and_responder
    pair = issue(ca)
    sct = fresh_logs["DigiCert Log Server"].add_chain(pair.final_certificate, NOW)
    response = responder.respond(pair.final_certificate, NOW, scts=(sct,))
    assert response.scts() == [sct]
    assert response.verify(responder.key, NOW)


def test_revocation(ca_and_responder):
    ca, responder = ca_and_responder
    pair = issue(ca)
    responder.revoke(pair.final_certificate, NOW)
    assert responder.is_revoked(pair.final_certificate)
    response = responder.respond(pair.final_certificate, NOW)
    assert response.status is CertStatus.REVOKED


def test_foreign_certificate_unknown(ca_and_responder):
    _, responder = ca_and_responder
    other = CertificateAuthority("Other CA", key_bits=256)
    pair = issue(other)
    response = responder.respond(pair.final_certificate, NOW)
    assert response.status is CertStatus.UNKNOWN


def test_cannot_revoke_foreign_cert(ca_and_responder):
    _, responder = ca_and_responder
    other = CertificateAuthority("Other CA", key_bits=256)
    pair = issue(other)
    with pytest.raises(ValueError):
        responder.revoke(pair.final_certificate, NOW)


def test_stale_response_rejected(ca_and_responder):
    ca, responder = ca_and_responder
    pair = issue(ca)
    response = responder.respond(pair.final_certificate, NOW)
    assert not response.verify(responder.key, NOW + timedelta(days=8))


def test_tampered_response_rejected(ca_and_responder):
    ca, responder = ca_and_responder
    pair = issue(ca)
    response = responder.respond(pair.final_certificate, NOW)
    from dataclasses import replace

    forged = replace(response, status=CertStatus.GOOD, serial=response.serial + 1)
    assert not forged.verify(responder.key, NOW)


def test_netlock_scenario(ca_and_responder, fresh_logs):
    """Section 3.4: NetLock re-issued and revoked the bad certificate."""
    from repro.x509.ca import IssuanceBug

    ca = CertificateAuthority("NetLock", key_bits=256)
    responder = OcspResponder("NetLock", KeyPair.generate("netlock-ocsp", 256))
    bad = ca.issue(
        IssuanceRequest(("www.netlock-ugyfel.hu",)),
        [fresh_logs["Google Pilot log"]], NOW, bug=IssuanceBug.SAN_SWAP,
    )
    reissued = ca.issue(
        IssuanceRequest(("www.netlock-ugyfel.hu",)),
        [fresh_logs["Google Pilot log"]], NOW + timedelta(days=1),
    )
    responder.revoke(bad.final_certificate, NOW + timedelta(days=1))
    assert responder.respond(bad.final_certificate, NOW + timedelta(days=2)).status is CertStatus.REVOKED
    assert responder.respond(reissued.final_certificate, NOW + timedelta(days=2)).status is CertStatus.GOOD
