"""Tests for client-side certificate validation helpers."""

from repro.util.timeutil import utc_datetime
from repro.x509.ca import CertificateAuthority, IssuanceRequest
from repro.x509.certificate import Certificate, dns_general_names
from repro.x509.validation import (
    hostname_matches,
    is_time_valid,
    validate_for_connection,
    verify_certificate_signature,
)


def make_cert(names, nb=None, na=None):
    return Certificate(
        serial=1,
        issuer_cn="I",
        issuer_org="I Org",
        subject_cn=names[0],
        san=dns_general_names(names),
        not_before=nb or utc_datetime(2018, 1, 1),
        not_after=na or utc_datetime(2018, 12, 31),
    )


def test_exact_hostname_match():
    cert = make_cert(["example.org"])
    assert hostname_matches(cert, "example.org")
    assert hostname_matches(cert, "EXAMPLE.ORG.")


def test_hostname_mismatch():
    assert not hostname_matches(make_cert(["example.org"]), "other.org")


def test_wildcard_matches_single_label():
    cert = make_cert(["*.example.org"])
    assert hostname_matches(cert, "www.example.org")
    assert not hostname_matches(cert, "a.b.example.org")
    assert not hostname_matches(cert, "example.org")


def test_wildcard_requires_leftmost_position():
    cert = make_cert(["www.*.org"])
    assert not hostname_matches(cert, "www.example.org")


def test_time_validity():
    cert = make_cert(["example.org"])
    assert is_time_valid(cert, utc_datetime(2018, 6, 1))
    assert not is_time_valid(cert, utc_datetime(2019, 6, 1))
    assert not is_time_valid(cert, utc_datetime(2017, 6, 1))


def test_signature_verification_via_ca():
    ca = CertificateAuthority("Sig CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(("signed.example",), embed_scts=False), [], utc_datetime(2018, 3, 1)
    )
    assert verify_certificate_signature(pair.final_certificate, ca.key)
    other = CertificateAuthority("Other CA", key_bits=256)
    assert not verify_certificate_signature(pair.final_certificate, other.key)


def test_validate_for_connection_all_checks():
    ca = CertificateAuthority("Conn CA", key_bits=256)
    pair = ca.issue(
        IssuanceRequest(("conn.example",), embed_scts=False), [], utc_datetime(2018, 3, 1)
    )
    cert = pair.final_certificate
    now = utc_datetime(2018, 4, 1)
    assert validate_for_connection(cert, "conn.example", now, ca.key)
    assert not validate_for_connection(cert, "wrong.example", now, ca.key)
    assert not validate_for_connection(cert, "conn.example", utc_datetime(2020, 1, 1), ca.key)
